"""Parallel mining runtime: sharded support counting and batched evaluation.

The level-wise miners spend nearly all their time in per-(pattern,
transaction) support checks.  This package is the execution subsystem that
scales that hot path without ever changing mining output:

* :class:`~repro.runtime.base.MiningRuntime` — the substrate interface
  the miners program against (register transactions, batched support over
  global tids, aggregated stats).
* :class:`~repro.runtime.base.SerialRuntime` — single-engine reference
  implementation; the default everywhere, byte-identical to the
  pre-runtime behaviour.
* :class:`~repro.runtime.shards.ShardedEngine` — K shards, each owning
  its transactions' indexes and verdict cache, fed by a
  :class:`~repro.runtime.planner.BatchSupportPlanner` that evaluates a
  whole FSG level against each shard in one transaction-major pass.
* :class:`~repro.runtime.pool.WorkerPool` — the backend abstraction:
  ``serial`` (inline, deterministic debugging) and ``process``
  (``multiprocessing`` workers speaking the CompactGraph wire format).
* :mod:`~repro.runtime.faults` — the deterministic fault-injection
  harness (``REPRO_FAULTS`` / ``--faults``) that drives the sharded
  engine's supervision layer: dead or hung workers are detected via
  deadline polling (``REPRO_WORKER_TIMEOUT``), respawned with bounded
  retries (``REPRO_RECOVERY_RETRIES`` / ``REPRO_RECOVERY_BACKOFF``),
  deterministically rebuilt, and the in-flight level replayed — with an
  in-process degraded mode as the last resort, so output never changes.

Pick a runtime with :func:`create_runtime`, or set ``REPRO_WORKERS`` /
``REPRO_BACKEND`` / ``REPRO_KERNEL`` / ``REPRO_WIRE`` /
``REPRO_PLACEMENT`` to switch a whole run (or CI job) without code
changes.
"""

from __future__ import annotations

from repro.graphs.engine import KERNEL_ENV, KERNELS, MatchEngine, resolve_kernel
from repro.runtime.base import (
    BACKENDS,
    SESSION_TELEMETRY_KEYS,
    DelegatingSession,
    LevelRequest,
    MiningRuntime,
    MiningSession,
    SerialRuntime,
    merge_stats,
    resolve_backend,
    resolve_workers,
)
from repro.runtime.bitsets import (
    bits_of,
    bits_to_buffer,
    buffer_to_bits,
    pack_bits,
    popcount,
    tids_from_buffer,
    tids_of,
    unpack_bits,
)
from repro.runtime.planner import (
    PLACEMENT_ENV,
    BatchSupportPlanner,
    PlacementPolicy,
    ShardBatch,
    ShardLevelBatch,
    ShardSessionBatch,
    resolve_placement,
    wire_cost,
)
from repro.runtime.faults import (
    FAULTS_ENV,
    FaultClause,
    FaultInjector,
    FaultPlan,
    SimulatedWorkerDeath,
    resolve_faults,
)
from repro.runtime.pool import (
    WORKER_TIMEOUT_ENV,
    ProcessBackend,
    SerialBackend,
    WorkerCorruption,
    WorkerDeath,
    WorkerError,
    WorkerPool,
    make_pool,
    resolve_worker_timeout,
)
from repro.runtime.shards import ShardedEngine, ShardedSession, ShardWorker
from repro.runtime.wire import (
    BLOB_OP,
    SHM_OP,
    WIRE_ENV,
    WIRES,
    WireFormatError,
    decode_message,
    encode_message,
    resolve_wire,
)

__all__ = [
    "BACKENDS",
    "BLOB_OP",
    "FAULTS_ENV",
    "KERNELS",
    "KERNEL_ENV",
    "PLACEMENT_ENV",
    "SESSION_TELEMETRY_KEYS",
    "SHM_OP",
    "WIRES",
    "WIRE_ENV",
    "WORKER_TIMEOUT_ENV",
    "BatchSupportPlanner",
    "PlacementPolicy",
    "WireFormatError",
    "DelegatingSession",
    "FaultClause",
    "FaultInjector",
    "FaultPlan",
    "LevelRequest",
    "MiningRuntime",
    "MiningSession",
    "ProcessBackend",
    "SerialBackend",
    "SerialRuntime",
    "ShardBatch",
    "ShardLevelBatch",
    "ShardSessionBatch",
    "ShardWorker",
    "ShardedEngine",
    "ShardedSession",
    "SimulatedWorkerDeath",
    "WorkerCorruption",
    "WorkerDeath",
    "WorkerError",
    "WorkerPool",
    "bits_of",
    "bits_to_buffer",
    "buffer_to_bits",
    "create_runtime",
    "make_pool",
    "merge_stats",
    "pack_bits",
    "popcount",
    "decode_message",
    "encode_message",
    "resolve_backend",
    "resolve_faults",
    "resolve_kernel",
    "resolve_placement",
    "resolve_wire",
    "resolve_worker_timeout",
    "resolve_workers",
    "tids_from_buffer",
    "tids_of",
    "unpack_bits",
    "wire_cost",
]


def create_runtime(
    workers: int | None = None,
    backend: str | None = None,
    engine: MatchEngine | None = None,
    kernel: str | None = None,
    wire: str | None = None,
) -> MiningRuntime:
    """The runtime implied by a ``workers`` knob.

    ``workers`` of ``0`` or ``1`` (or unset, with no ``REPRO_WORKERS`` in
    the environment) selects the serial runtime, optionally wrapping a
    caller-supplied *engine*; ``workers >= 2`` builds a
    :class:`ShardedEngine` with that many shards on *backend* (defaulting
    to ``process``, or ``REPRO_BACKEND``).

    *kernel* picks the support-kernel backend (``"python"`` or
    ``"vectorized"``, defaulting to ``REPRO_KERNEL`` or ``"python"``) and
    applies to every engine the runtime owns — shard engines included.

    *wire* picks the sharded runtime's message encoding (``"buffer"`` or
    ``"pickle"``, defaulting to ``REPRO_WIRE`` or ``"buffer"``); the
    serial runtime has no wire and ignores it.

    *engine* applies to the serial case only: a sharded runtime owns one
    engine (label table, indexes, verdict cache) per shard by design, so
    a caller-supplied engine — and any caches warmed in it — is not used
    when sharding is selected.  Passing both *engine* and a conflicting
    *kernel* raises.
    """
    workers = resolve_workers(workers)
    if workers <= 1:
        return SerialRuntime(engine=engine, kernel=kernel)
    return ShardedEngine(shards=workers, backend=backend, kernel=kernel, wire=wire)
