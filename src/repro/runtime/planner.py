"""Batched per-level support planning across shards.

At each FSG level the miner has a batch of surviving candidate patterns,
each with the (global) transaction ids it could possibly occur in — its
parent's TID list.  The :class:`BatchSupportPlanner` turns that batch into
one task per shard:

* global tids are translated to each shard's local tid space;
* a pattern is only shipped to a shard that owns at least one of its
  candidate transactions (a pattern whose parents all live elsewhere costs
  the shard nothing — not even a pickle);
* every pattern is encoded once as a :class:`~repro.graphs.compact.
  CompactGraph` wire tuple, shared by all shard tasks that need it.

The shard evaluates its task in a single transaction-major pass
(:meth:`~repro.graphs.engine.MatchEngine.batch_support`): per transaction,
the index entry is resolved once and candidate buckets are filtered once
per distinct requirement, serving every pattern in the batch.  Merging is
trivial because shards partition the transactions: the per-pattern global
support set is the disjoint union of the shard-local results.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.graphs.compact import CompactGraph, LabelTable
from repro.graphs.labeled_graph import LabeledGraph
from repro.runtime.bitsets import bits_of, bits_to_buffer, tids_of


#: Pinned pickle protocol for wire accounting.  Pinning (rather than
#: ``HIGHEST_PROTOCOL``) keeps measured byte counts stable across
#: interpreter upgrades, so archived telemetry stays comparable.
WIRE_PICKLE_PROTOCOL = 4


def wire_cost(value) -> int:
    """Measured serialized size of a wire payload, in bytes.

    The actual ``pickle.dumps`` length at a pinned protocol — exactly
    what the process backend's pipe would carry for *value* — rather
    than the pickle-era estimate this function used to return.  The
    measurement is deterministic (same value, same bytes) and applied
    uniformly under both pool backends, so serial-backend telemetry
    reads in the same units as a real multiprocess run, and the two
    wire formats (``pickle`` vs ``buffer``) are compared with the same
    ruler.  Values pickle cannot serialize fall back to the old framing
    model so accounting never raises mid-mine.
    """
    try:
        return len(pickle.dumps(value, WIRE_PICKLE_PROTOCOL))
    except Exception:
        return _estimated_wire_cost(value)


def _estimated_wire_cost(value) -> int:
    """The pickle-era framing model, kept as the unpicklable fallback."""
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, int):
        if -(1 << 31) <= value < (1 << 31):
            return 5
        return (value.bit_length() + 7) // 8 + 6
    if isinstance(value, float):
        return 9
    if isinstance(value, (str, bytes)):
        return len(value) + 6
    if isinstance(value, (tuple, list, frozenset, set)):
        return 2 + sum(_estimated_wire_cost(member) for member in value)
    if isinstance(value, dict):
        return 2 + sum(
            _estimated_wire_cost(key) + _estimated_wire_cost(item)
            for key, item in value.items()
        )
    return 8  # opaque objects (uids etc.): a flat-rate guess


class PlacementPolicy:
    """Deterministic tid-to-shard placement.

    ``weighted`` (the default) greedily assigns each arriving
    transaction to the currently lightest shard, where a transaction's
    weight is its edge count — the level-1 scan cost every shard pays
    per resident transaction.  Ties break toward the lowest shard id,
    so placement is a pure function of the arrival order and weights:
    reruns of the same corpus reproduce the same partition, which keeps
    golden digests stable.  On uniform weights the policy degenerates to
    exact round-robin, matching the legacy layout.

    ``roundrobin`` keeps the legacy static ``arrival % n_shards``
    placement, retained as the A/B baseline for the skew benchmarks.
    """

    POLICIES = ("weighted", "roundrobin")

    def __init__(self, n_shards: int, policy: str = "weighted"):
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown placement policy {policy!r}; expected one of {self.POLICIES}"
            )
        self.n_shards = n_shards
        self.policy = policy
        #: Cumulative placed weight per shard — the balance the weighted
        #: policy levels, exported to telemetry by the engine.
        self.loads = [0] * n_shards
        self._arrivals = 0

    def place(self, weight: int) -> int:
        """Assign the next transaction (scan cost *weight*) to a shard."""
        if self.policy == "roundrobin":
            shard = self._arrivals % self.n_shards
        else:
            shard = min(range(self.n_shards), key=lambda s: (self.loads[s], s))
        self._arrivals += 1
        self.loads[shard] += max(1, weight)
        return shard


#: Environment fallback consulted when no explicit placement policy is given.
PLACEMENT_ENV = "REPRO_PLACEMENT"


def resolve_placement(policy: str | None) -> str:
    """Resolve the placement policy: explicit value, else
    ``$REPRO_PLACEMENT``, else ``"weighted"``."""
    if policy is None:
        policy = os.environ.get(PLACEMENT_ENV) or PlacementPolicy.POLICIES[0]
    if policy not in PlacementPolicy.POLICIES:
        raise ValueError(
            f"unknown placement policy {policy!r}; "
            f"expected one of {PlacementPolicy.POLICIES}"
        )
    return policy


@dataclass
class ShardBatch:
    """The slice of a level batch destined for one shard.

    ``positions[i]`` is the index into the level's candidate list that
    ``wires[i]`` / ``tid_lists[i]`` correspond to; ``tid_lists`` are in the
    shard's *local* tid space.
    """

    shard: int
    positions: list[int] = field(default_factory=list)
    wires: list[tuple] = field(default_factory=list)
    tid_lists: list[list[int]] = field(default_factory=list)
    keys: list[object] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not self.positions


class BatchSupportPlanner:
    """Splits level batches into per-shard tasks and merges their results."""

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        self.n_shards = n_shards

    def plan(
        self,
        patterns: Sequence[LabeledGraph | CompactGraph],
        tid_lists: Sequence[Sequence[int]] | None,
        table: LabelTable,
        locate,
        pattern_keys: Sequence[object] | None = None,
    ) -> list[ShardBatch]:
        """Build one :class:`ShardBatch` per shard.

        *locate* maps a global tid to its ``(shard, local tid)`` home (the
        sharded engine's placement function).  With ``tid_lists=None`` the
        caller must expand to the full live tid list first — the planner
        never guesses at corpus membership.  ``pattern_keys`` (per-pattern
        verdict-cache keys, see :meth:`MatchEngine.batch_support`) ride
        along to whichever shards receive the pattern.
        """
        if tid_lists is None:
            raise ValueError("the planner needs explicit tid lists per pattern")
        if len(tid_lists) != len(patterns):
            raise ValueError("tid_lists must align with patterns")
        if pattern_keys is not None and len(pattern_keys) != len(patterns):
            raise ValueError("pattern_keys must align with patterns")
        batches = [ShardBatch(shard=shard) for shard in range(self.n_shards)]
        for position, (pattern, tids) in enumerate(zip(patterns, tid_lists)):
            by_shard: dict[int, list[int]] = {}
            for tid in tids:
                shard, local = locate(tid)
                by_shard.setdefault(shard, []).append(local)
            if not by_shard:
                continue
            wire = self._wire_of(pattern, table)
            key = pattern_keys[position] if pattern_keys is not None else None
            for shard, locals_ in sorted(by_shard.items()):
                batch = batches[shard]
                batch.positions.append(position)
                batch.wires.append(wire)
                batch.tid_lists.append(sorted(locals_))
                batch.keys.append(key)
        return batches

    @staticmethod
    def merge(
        n_patterns: int,
        batches: Sequence[ShardBatch],
        shard_results: Sequence[Sequence[Sequence[int]] | None],
        to_global,
    ) -> list[frozenset[int]]:
        """Union shard-local supports back into per-pattern global tid sets.

        ``shard_results[k]`` aligns with ``batches[k].positions``;
        *to_global* maps ``(shard, local tid)`` back to the global tid.
        Shards own disjoint transactions, so the union is merge-order
        independent — the frozensets are identical whatever order replies
        arrive in.
        """
        merged: list[set[int]] = [set() for _ in range(n_patterns)]
        for batch, result in zip(batches, shard_results):
            if result is None:
                continue
            for position, locals_ in zip(batch.positions, result):
                merged[position].update(to_global(batch.shard, local) for local in locals_)
        return [frozenset(tids) for tids in merged]

    @staticmethod
    def _wire_of(pattern: LabeledGraph | CompactGraph, table: LabelTable) -> tuple:
        if isinstance(pattern, CompactGraph):
            if pattern.table is not table:
                raise ValueError("pattern compacted through a different label table")
            return pattern.to_wire()
        return CompactGraph.from_labeled(pattern, table).to_wire()

    # ------------------------------------------------------------------
    # Incremental (embedding-store) level planning
    # ------------------------------------------------------------------
    def plan_level(
        self,
        requests: Sequence,
        table: LabelTable,
        locate,
        min_support: int | None = None,
    ) -> list["ShardLevelBatch"]:
        """Split :class:`~repro.runtime.base.LevelRequest` batches per shard.

        Like :meth:`plan`, but requests carry global-tid *bitsets* and the
        embedding-store derivation tokens (uid / parent uid / extension),
        which ride along to every shard that owns any of the request's
        candidate transactions.  The early-abort threshold is translated
        into each shard's frame of reference: a shard holding ``m`` of a
        request's ``n`` candidate tids may abort once even sweeping its
        remaining slice cannot push the *global* count to *min_support* —
        i.e. its local bound is ``min_support - (n - m)``.  That bound is
        sound whatever the other shards find, so aborts can never make
        runtimes disagree on which candidates survive.
        """
        batches = [ShardLevelBatch(shard=shard) for shard in range(self.n_shards)]
        for position, request in enumerate(requests):
            tids = tids_of(request.tid_bits)
            by_shard: dict[int, list[int]] = {}
            for tid in tids:
                shard, local = locate(tid)
                by_shard.setdefault(shard, []).append(local)
            if not by_shard:
                continue
            wire = self._wire_of(request.pattern, table)
            total = len(tids)
            for shard, locals_ in sorted(by_shard.items()):
                batch = batches[shard]
                batch.positions.append(position)
                batch.wires.append(wire)
                batch.tid_lists.append(sorted(locals_))
                batch.scan_tids += len(locals_)
                batch.keys.append(request.key)
                batch.uids.append(request.uid)
                batch.parent_uids.append(request.parent_uid)
                batch.extensions.append(request.extension)
                if min_support is None:
                    batch.abort_bounds.append(None)
                else:
                    bound = min_support - (total - len(locals_))
                    batch.abort_bounds.append(bound if bound > 0 else None)
        return batches

    @staticmethod
    def merge_level(
        n_requests: int,
        batches: Sequence["ShardLevelBatch"],
        shard_results: Sequence[Sequence[Sequence[int]] | None],
        to_global,
    ) -> list[int]:
        """OR shard-local supports back into per-request global bitsets.

        Shards own disjoint transactions, so each request's global support
        is just the bitwise union of its shards' translated results —
        order-independent by construction.
        """
        merged = [0] * n_requests
        for batch, result in zip(batches, shard_results):
            if result is None:
                continue
            shard = batch.shard
            for position, locals_ in zip(batch.positions, result):
                if locals_:
                    merged[position] |= bits_of(
                        [to_global(shard, local) for local in locals_]
                    )
        return merged


    # ------------------------------------------------------------------
    # Stateful (mining-session) level planning
    # ------------------------------------------------------------------
    def plan_session_level(
        self,
        requests: Sequence,
        table: LabelTable,
        locate,
        min_support: int | None = None,
        resident: Sequence[set] | None = None,
        hit_positions: Callable[[int, object], "dict[int, int] | None"] | None = None,
    ) -> list["ShardSessionBatch"]:
        """Split a level across shards that keep resident pattern stores.

        Like :meth:`plan_level`, but each ``(request, shard)`` pair ships
        the cheapest payload the shard's state allows:

        * **delta** ``("d", edge_label_id, new_label_id, mask_buffer)``
          when the request's parent is resident on the shard
          (``resident[shard]``) and its local hit positions are known —
          the shard rebuilds the candidate from the stored parent, and
          ``mask_buffer`` encodes the candidate's local scan set as a
          flat little-endian bitset buffer over the *parent's* shard-local
          hit list (a few bytes instead of a tid list, sound because a
          candidate's scan set is contained in every parent's support);
        * **full wire** ``("w", wire, tid_buffer)`` for roots, requests
          with no derivation, and store misses — ``tid_buffer`` being the
          local scan set as a flat local-tid bitset buffer.

        Scan sets ship as :func:`~repro.runtime.bitsets.bits_to_buffer`
        byte strings rather than arbitrary-precision ints: the receiver
        decodes them with one vectorized
        :func:`~repro.runtime.bitsets.tids_from_buffer` unpack, and the
        buffer pickles as raw bytes with no bignum re-encoding.

        Session payloads deliberately carry no verdict-cache keys: a
        session's tids die with its run (released on mine exit, which
        evicts their verdicts) and no ``(pattern, tid)`` pair repeats
        within a run, so shard-side verdict caching has nothing to hit —
        dropping the canonical-code strings from the wire is pure
        savings.  Abort bounds are localized exactly as in
        :meth:`plan_level`.
        """
        batches = [ShardSessionBatch(shard=shard) for shard in range(self.n_shards)]
        for position, request in enumerate(requests):
            tids = tids_of(request.tid_bits)
            by_shard: dict[int, list[int]] = {}
            for tid in tids:
                shard, local = locate(tid)
                by_shard.setdefault(shard, []).append(local)
            if not by_shard:
                continue
            wire = None
            total = len(tids)
            deltable = (
                resident is not None
                and request.parent_uid is not None
                and request.extension is not None
                and request.extension_labels is not None
            )
            for shard, locals_ in sorted(by_shard.items()):
                payload = None
                if deltable and request.parent_uid in resident[shard]:
                    positions = (
                        hit_positions(shard, request.parent_uid)
                        if hit_positions is not None
                        else None
                    )
                    if positions is not None:
                        mask = 0
                        for local in locals_:
                            offset = positions.get(local)
                            if offset is None:
                                # A scan tid outside the parent's hits can
                                # only mean stale parent state — ship full.
                                mask = None
                                break
                            mask |= 1 << offset
                        if mask is not None:
                            edge_label, new_label = request.extension_labels
                            payload = (
                                "d",
                                table.intern(edge_label),
                                None if new_label is None else table.intern(new_label),
                                bits_to_buffer(mask),
                            )
                if payload is None:
                    if wire is None:
                        wire = self._wire_of(request.pattern, table)
                    payload = ("w", wire, bits_to_buffer(bits_of(locals_)))
                batch = batches[shard]
                batch.positions.append(position)
                batch.payloads.append(payload)
                batch.scan_tids += len(locals_)
                batch.uids.append(request.uid)
                batch.parent_uids.append(request.parent_uid)
                batch.extensions.append(request.extension)
                if min_support is None:
                    batch.abort_bounds.append(None)
                else:
                    bound = min_support - (total - len(locals_))
                    batch.abort_bounds.append(bound if bound > 0 else None)
        return batches


@dataclass
class ShardSessionBatch:
    """The slice of a stateful session level destined for one shard.

    Parallel lists aligned with ``positions`` (indices into the level's
    request list).  ``payloads[i]`` is the pattern+scan shipment for
    request ``positions[i]`` — a full-wire ``("w", wire, tid_buffer)`` or
    a delta ``("d", edge_label_id, new_label_id, mask_buffer)`` tuple,
    scan sets as flat bitset byte buffers (see
    :meth:`BatchSupportPlanner.plan_session_level`).  Replies align with
    ``positions`` too, so :meth:`BatchSupportPlanner.merge_level` merges
    session batches unchanged.
    """

    shard: int
    positions: list[int] = field(default_factory=list)
    payloads: list[tuple] = field(default_factory=list)
    uids: list[object] = field(default_factory=list)
    parent_uids: list[object] = field(default_factory=list)
    extensions: list[tuple | None] = field(default_factory=list)
    abort_bounds: list[int | None] = field(default_factory=list)
    #: Scan workload routed to this shard: candidate tids summed over the
    #: level's requests (the shard-skew telemetry's unit of account).
    scan_tids: int = 0

    def is_empty(self) -> bool:
        return not self.positions

    def count_full(self) -> int:
        return sum(1 for payload in self.payloads if payload[0] == "w")

    def count_delta(self) -> int:
        return sum(1 for payload in self.payloads if payload[0] == "d")


@dataclass
class ShardLevelBatch:
    """The slice of an incremental level batch destined for one shard.

    Parallel lists, all aligned with ``positions`` (indices into the
    level's request list); ``tid_lists`` are in the shard's local tid
    space and ``abort_bounds`` are the shard-local early-abort
    thresholds (``None`` disables abort for that request).
    """

    shard: int
    positions: list[int] = field(default_factory=list)
    wires: list[tuple] = field(default_factory=list)
    tid_lists: list[list[int]] = field(default_factory=list)
    keys: list[object] = field(default_factory=list)
    uids: list[object] = field(default_factory=list)
    parent_uids: list[object] = field(default_factory=list)
    extensions: list[tuple | None] = field(default_factory=list)
    abort_bounds: list[int | None] = field(default_factory=list)
    #: Scan workload routed to this shard: candidate tids summed over the
    #: level's requests (the shard-skew telemetry's unit of account).
    scan_tids: int = 0

    def is_empty(self) -> bool:
        return not self.positions
