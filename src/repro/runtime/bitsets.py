"""Bitset TID-list algebra.

A supporting-TID set is a set of small dense integers, and the mining
runtime manipulates thousands of them per level: intersecting parent
lists before a scan, unioning shard-local results, and asking "how many
are left" for the early-abort bound.  Representing them as plain Python
ints (bit *i* set ⟺ tid *i* in the set) turns every one of those
operations into a single CPython long-integer op:

* union is ``|``, intersection is ``&``, difference is ``& ~``;
* cardinality is :meth:`int.bit_count` (a popcount, no iteration);
* the empty set is ``0`` and is falsy, like the sets it replaces.

Bitsets are value objects — hashable, picklable as ordinary ints, and
trivially shippable over the runtime's worker pipes.  The helpers here
are the only places that convert between bitsets and explicit tid
collections, so the rest of the code can stay representation-agnostic.

Packed representation
---------------------
The int form is ideal for algebra (``|``/``&`` are single CPython ops)
but converting between it and explicit tid lists is a per-bit Python
loop.  When numpy is available, large conversions go through a *packed*
form instead — a little-endian ``uint64`` word array (word ``w`` bit
``b`` set ⟺ tid ``64*w + b`` in the set) — with vectorized popcount,
union/intersection/translation, and an early-abort partial popcount.
The ``pack_bits`` / ``unpack_bits`` pair and the flat byte-buffer wire
helpers (``bits_to_buffer`` / ``buffer_to_bits`` / ``tids_from_buffer``)
are lossless round trips, and every helper keeps a pure-python fallback,
so callers never need to know whether numpy is importable.
"""

from __future__ import annotations

from typing import Iterable

try:  # numpy is optional: every helper keeps a pure-python fallback.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

#: Bits per packed word.
WORD_BITS = 64

#: Below these sizes the pure-python paths win (no array setup cost).
_NUMPY_BITS_THRESHOLD = 256
_NUMPY_TIDS_THRESHOLD = 128


def bits_of(tids: Iterable[int]) -> int:
    """The bitset holding exactly the tids in *tids*."""
    if _np is not None and isinstance(tids, _np.ndarray):
        tids = tids.tolist()
    tids = tids if isinstance(tids, (list, tuple)) else list(tids)
    if _np is not None and len(tids) >= _NUMPY_TIDS_THRESHOLD:
        indicator = _np.zeros(max(tids) + 1, dtype=_np.uint8)
        indicator[_np.asarray(tids, dtype=_np.int64)] = 1
        return int.from_bytes(
            _np.packbits(indicator, bitorder="little").tobytes(), "little"
        )
    bits = 0
    for tid in tids:
        bits |= 1 << tid
    return bits


def tids_of(bits: int) -> list[int]:
    """The tids of *bits* in ascending order.

    Small sets peel the lowest set bit per step (cost proportional to the
    population count); large sets unpack through numpy in one pass.
    """
    if _np is not None and bits.bit_length() >= _NUMPY_BITS_THRESHOLD:
        return tids_from_buffer(bits_to_buffer(bits))
    out: list[int] = []
    while bits:
        low = bits & -bits
        out.append(low.bit_length() - 1)
        bits ^= low
    return out


def popcount(bits: int) -> int:
    """Number of tids in *bits*."""
    return bits.bit_count()


def translate_bits(bits: int, mapping: "list[int] | dict[int, int]") -> int:
    """Rewrite each tid of *bits* through *mapping* (index/key -> new tid).

    Used at the miner/runtime boundary to move a set between a run's
    local tid space and the runtime's global one.  When the two spaces
    differ only by an offset, prefer :func:`shift_bits` — it is a single
    shift instead of a per-bit loop.
    """
    out = 0
    for tid in tids_of(bits):
        out |= 1 << mapping[tid]
    return out


def shift_bits(bits: int, offset: int) -> int:
    """Add *offset* to every tid of *bits* (*offset* may be negative)."""
    if offset >= 0:
        return bits << offset
    return bits >> -offset


def is_contiguous(tids: "list[int]") -> bool:
    """Whether *tids* is exactly ``base, base+1, ..., base+len-1``.

    Runtimes allocate one run's global tids consecutively, which makes
    local<->global translation a plain shift; this is the check that
    guards that fast path.
    """
    if not tids:
        return True
    base = tids[0]
    return all(tid == base + index for index, tid in enumerate(tids))


# ----------------------------------------------------------------------
# Flat byte-buffer wire form
# ----------------------------------------------------------------------
def bits_to_buffer(bits: int) -> bytes:
    """*bits* as a little-endian byte buffer (the runtime wire form).

    The buffer is minimal-length (no trailing zero bytes beyond the
    highest set bit); the empty set is the empty buffer.
    """
    return bits.to_bytes((bits.bit_length() + 7) // 8, "little")


def buffer_to_bits(buffer: bytes) -> int:
    """Inverse of :func:`bits_to_buffer` (trailing zero bytes are fine)."""
    return int.from_bytes(buffer, "little")


def tids_from_buffer(buffer: bytes) -> list[int]:
    """The ascending tids encoded by a :func:`bits_to_buffer` buffer.

    Decodes straight from the buffer — one vectorized unpack when numpy
    is available, never materialising the intermediate int on that path.
    """
    if _np is not None and len(buffer) >= _NUMPY_BITS_THRESHOLD // 8:
        unpacked = _np.unpackbits(
            _np.frombuffer(buffer, dtype=_np.uint8), bitorder="little"
        )
        return _np.flatnonzero(unpacked).tolist()
    return tids_of(int.from_bytes(buffer, "little"))


# ----------------------------------------------------------------------
# Packed uint64 word arrays
# ----------------------------------------------------------------------
def pack_bits(bits: int, n_words: int | None = None):
    """*bits* as a little-endian ``uint64`` word array (numpy required).

    ``n_words`` pads the array to a fixed width so sets over one tid
    universe can be combined without alignment checks.
    """
    _require_numpy()
    words = (bits.bit_length() + WORD_BITS - 1) // WORD_BITS
    if n_words is not None:
        if words > n_words:
            raise ValueError(f"bitset needs {words} words, caller allowed {n_words}")
        words = n_words
    buffer = bits.to_bytes(words * 8, "little")
    return _np.frombuffer(buffer, dtype="<u8").copy()


def unpack_bits(packed) -> int:
    """Inverse of :func:`pack_bits`."""
    _require_numpy()
    return int.from_bytes(
        _np.ascontiguousarray(packed, dtype="<u8").tobytes(), "little"
    )


def packed_tids(packed) -> list[int]:
    """The ascending tids of a packed word array."""
    _require_numpy()
    unpacked = _np.unpackbits(
        _np.ascontiguousarray(packed, dtype="<u8").view(_np.uint8), bitorder="little"
    )
    return _np.flatnonzero(unpacked).tolist()


def packed_from_tids(tids: Iterable[int], n_words: int | None = None):
    """The packed word array holding exactly *tids*."""
    _require_numpy()
    tids = list(tids)
    highest = max(tids) if tids else -1
    words = highest // WORD_BITS + 1 if highest >= 0 else 0
    if n_words is not None:
        if words > n_words:
            raise ValueError(f"tids need {words} words, caller allowed {n_words}")
        words = n_words
    indicator = _np.zeros(words * WORD_BITS, dtype=_np.uint8)
    if tids:
        indicator[_np.asarray(tids, dtype=_np.int64)] = 1
    return _np.packbits(indicator, bitorder="little").view("<u8").copy()


def _word_popcounts(packed):
    """Per-word popcounts (vectorized; unpackbits fallback for old numpy)."""
    if hasattr(_np, "bitwise_count"):
        return _np.bitwise_count(packed)
    bits = _np.unpackbits(packed.view(_np.uint8)).reshape(packed.size, WORD_BITS)
    return bits.sum(axis=1, dtype=_np.int64)


def packed_popcount(packed) -> int:
    """Number of tids in a packed word array (vectorized popcount)."""
    _require_numpy()
    if packed.size == 0:
        return 0
    return int(_word_popcounts(packed).sum())


def packed_popcount_at_least(packed, bound: int, chunk_words: int = 1024) -> bool:
    """Whether the popcount reaches *bound*, aborting as soon as it does.

    The early-abort partial popcount: counts ``chunk_words`` words at a
    time and stops at the first chunk that pushes the running total past
    *bound*, so huge sets with early mass never pay a full scan.
    """
    _require_numpy()
    if bound <= 0:
        return True
    total = 0
    for start in range(0, packed.size, chunk_words):
        total += int(_word_popcounts(packed[start : start + chunk_words]).sum())
        if total >= bound:
            return True
    return False


def _aligned(first, second):
    """*first*, *second* zero-padded to a common word width."""
    if first.size == second.size:
        return first, second
    width = max(first.size, second.size)
    if first.size < width:
        first = _np.concatenate([first, _np.zeros(width - first.size, dtype="<u8")])
    if second.size < width:
        second = _np.concatenate([second, _np.zeros(width - second.size, dtype="<u8")])
    return first, second


def packed_union(first, second):
    """Word-wise union of two packed arrays (widths may differ)."""
    _require_numpy()
    first, second = _aligned(first, second)
    return first | second


def packed_intersect(first, second):
    """Word-wise intersection of two packed arrays (widths may differ)."""
    _require_numpy()
    first, second = _aligned(first, second)
    return first & second


def packed_translate(packed, mapping: "list[int] | dict[int, int]", n_words: int | None = None):
    """Rewrite each tid of *packed* through *mapping* (vectorized remap).

    List mappings remap with one fancy-indexing pass; dict mappings fall
    back to a per-tid lookup (they are only used for gappy allocations,
    which the runtimes never produce in practice).
    """
    _require_numpy()
    tids = packed_tids(packed)
    if isinstance(mapping, dict):
        remapped = [mapping[tid] for tid in tids]
    elif tids:
        remapped = _np.asarray(mapping, dtype=_np.int64)[
            _np.asarray(tids, dtype=_np.int64)
        ]
    else:
        remapped = []
    return packed_from_tids(remapped, n_words=n_words)


def _require_numpy() -> None:
    if _np is None:  # pragma: no cover - exercised only without numpy
        raise ImportError(
            "packed uint64 bitsets need numpy, which is not importable in this "
            "environment; use the plain-int bitset helpers instead"
        )


__all__ = [
    "WORD_BITS",
    "bits_of",
    "tids_of",
    "popcount",
    "translate_bits",
    "shift_bits",
    "is_contiguous",
    "bits_to_buffer",
    "buffer_to_bits",
    "tids_from_buffer",
    "pack_bits",
    "unpack_bits",
    "packed_tids",
    "packed_from_tids",
    "packed_popcount",
    "packed_popcount_at_least",
    "packed_union",
    "packed_intersect",
    "packed_translate",
]
