"""Bitset TID-list algebra.

A supporting-TID set is a set of small dense integers, and the mining
runtime manipulates thousands of them per level: intersecting parent
lists before a scan, unioning shard-local results, and asking "how many
are left" for the early-abort bound.  Representing them as plain Python
ints (bit *i* set ⟺ tid *i* in the set) turns every one of those
operations into a single CPython long-integer op:

* union is ``|``, intersection is ``&``, difference is ``& ~``;
* cardinality is :meth:`int.bit_count` (a popcount, no iteration);
* the empty set is ``0`` and is falsy, like the sets it replaces.

Bitsets are value objects — hashable, picklable as ordinary ints, and
trivially shippable over the runtime's worker pipes.  The helpers here
are the only places that convert between bitsets and explicit tid
collections, so the rest of the code can stay representation-agnostic.
"""

from __future__ import annotations

from typing import Iterable


def bits_of(tids: Iterable[int]) -> int:
    """The bitset holding exactly the tids in *tids*."""
    bits = 0
    for tid in tids:
        bits |= 1 << tid
    return bits


def tids_of(bits: int) -> list[int]:
    """The tids of *bits* in ascending order.

    Peels the lowest set bit per step, so the cost is proportional to the
    population count, not to the highest tid.
    """
    out: list[int] = []
    while bits:
        low = bits & -bits
        out.append(low.bit_length() - 1)
        bits ^= low
    return out


def popcount(bits: int) -> int:
    """Number of tids in *bits*."""
    return bits.bit_count()


def translate_bits(bits: int, mapping: "list[int] | dict[int, int]") -> int:
    """Rewrite each tid of *bits* through *mapping* (index/key -> new tid).

    Used at the miner/runtime boundary to move a set between a run's
    local tid space and the runtime's global one.  When the two spaces
    differ only by an offset, prefer :func:`shift_bits` — it is a single
    shift instead of a per-bit loop.
    """
    out = 0
    for tid in tids_of(bits):
        out |= 1 << mapping[tid]
    return out


def shift_bits(bits: int, offset: int) -> int:
    """Add *offset* to every tid of *bits* (*offset* may be negative)."""
    if offset >= 0:
        return bits << offset
    return bits >> -offset


def is_contiguous(tids: "list[int]") -> bool:
    """Whether *tids* is exactly ``base, base+1, ..., base+len-1``.

    Runtimes allocate one run's global tids consecutively, which makes
    local<->global translation a plain shift; this is the check that
    guards that fast path.
    """
    if not tids:
        return True
    base = tids[0]
    return all(tid == base + index for index, tid in enumerate(tids))


__all__ = [
    "bits_of",
    "tids_of",
    "popcount",
    "translate_bits",
    "shift_bits",
    "is_contiguous",
]
