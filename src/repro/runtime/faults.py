"""Deterministic fault injection for the sharded mining runtime.

A :class:`FaultPlan` describes *where* and *when* workers misbehave, as a
small semicolon-separated spec parsed from the ``REPRO_FAULTS``
environment variable (or the CLI's ``--faults``)::

    kill:shard=1,level=3; hang:shard=0,op=slevel; corrupt-reply:shard=2,nth=4

Each clause is ``<kind>[:key=value,...]`` with kinds

``kill``
    The worker dies mid-message: ``SIGKILL`` to its own process under the
    process backend (a real silent death — the parent sees EOF, never a
    reply), a :class:`SimulatedWorkerDeath` raised inline under the
    serial backend.
``hang``
    The worker stops replying: a long sleep under the process backend
    (the parent's ``REPRO_WORKER_TIMEOUT`` deadline is what detects it),
    treated like ``kill`` inline (a real sleep would hang the calling
    thread, which *is* the parent).
``corrupt-reply``
    The reply is replaced with junk; the parent's reply-shape validation
    flags it as :class:`~repro.runtime.pool.WorkerCorruption`.

and filter keys

``shard=N``
    Only fire on shard ``N`` (default: any shard).
``op=NAME``
    Only fire on messages whose op is ``NAME`` (``slevel``, ``level``,
    ``batch``, ``add``...; default: any op).
``level=N``
    Only fire on the worker's ``N``-th level-type message (``slevel`` /
    ``level`` / ``batch``), counted from arming.  The miner primes level
    1 first, so on a freshly armed worker this is the mining level for
    shards that receive every level.
``nth=N``
    Only fire on the ``N``-th message matching the clause's other
    filters (1-based; default: the first match).
``times=N``
    Fire budget (default 1).
``sticky``
    Re-arm the clause after the worker is respawned by recovery (default
    clauses are consumed by the first recovery).  Sticky clauses are what
    make retry exhaustion — and the degrade-to-inline fallback —
    testable; they are never re-armed on a degraded worker.

Plans are **deterministic by construction**: firing depends only on
per-clause message counters, never on wall-clock or randomness, so a
fault lands on the exact same message in every run of the same workload.
When no plan is active the injector is simply absent (``None``) — the
same zero-overhead null pattern as :mod:`repro.obs`; workers pay one
``is None`` check per message and nothing else.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

#: Environment variable carrying the fault-plan spec.
FAULTS_ENV = "REPRO_FAULTS"

#: Fault kinds understood by the parser.
FAULT_KINDS = ("kill", "hang", "corrupt-reply")

#: Message ops that advance the injector's level counter (the worker-side
#: mirror of "one mining level = one level-type message per shard").
_LEVEL_OPS = frozenset({"slevel", "level", "batch"})

#: What a corrupted reply is replaced with: a value no shard op ever
#: legitimately returns, so the parent's shape validation always flags it.
CORRUPTED_REPLY = "\x00repro:corrupted-reply\x00"

#: How long a process-backend ``hang`` sleeps.  Far beyond any sane
#: ``REPRO_WORKER_TIMEOUT``; the parent's deadline fires first and the
#: sleeping process is terminated by the respawn.
_HANG_SECONDS = 3600.0


class SimulatedWorkerDeath(BaseException):
    """An injected worker death under the inline (serial) backend.

    Deliberately a ``BaseException``: handler code and the serial
    backend's generic ``except Exception`` error-wrapping must never
    swallow it into an ordinary :class:`~repro.runtime.pool.WorkerError`
    — the whole point is to exercise the *death* path, not the
    handler-error path.
    """


def _parse_bool(key: str, raw: str) -> bool:
    lowered = raw.strip().lower()
    if lowered in ("1", "true", "yes", "on", ""):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"fault clause key {key}={raw!r} is not a boolean")


def _parse_int(key: str, raw: str) -> int:
    try:
        return int(raw)
    except ValueError as error:
        raise ValueError(f"fault clause key {key}={raw!r} is not an integer") from error


@dataclass(frozen=True)
class FaultClause:
    """One parsed fault directive of a :class:`FaultPlan`."""

    kind: str
    shard: int | None = None
    op: str | None = None
    level: int | None = None
    nth: int | None = None
    times: int = 1
    sticky: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        for name in ("shard", "level", "nth", "times"):
            value = getattr(self, name)
            if value is not None and value < (1 if name in ("level", "nth", "times") else 0):
                raise ValueError(f"fault clause {name}={value} out of range")

    def to_spec(self) -> str:
        parts: list[str] = []
        for name in ("shard", "op", "level", "nth"):
            value = getattr(self, name)
            if value is not None:
                parts.append(f"{name}={value}")
        if self.times != 1:
            parts.append(f"times={self.times}")
        if self.sticky:
            parts.append("sticky")
        return self.kind if not parts else f"{self.kind}:{','.join(parts)}"

    @classmethod
    def parse(cls, text: str) -> "FaultClause":
        head, _, tail = text.partition(":")
        kind = head.strip()
        fields: dict[str, object] = {}
        for part in tail.split(","):
            part = part.strip()
            if not part:
                continue
            key, eq, raw = part.partition("=")
            key = key.strip()
            if key == "sticky":
                fields["sticky"] = _parse_bool(key, raw) if eq else True
            elif key == "op":
                fields["op"] = raw.strip()
            elif key in ("shard", "level", "nth", "times"):
                fields[key] = _parse_int(key, raw)
            else:
                raise ValueError(f"unknown fault clause key {key!r} in {text!r}")
        return cls(kind=kind, **fields)


class FaultPlan:
    """An immutable, deterministic set of :class:`FaultClause` directives."""

    def __init__(self, clauses: tuple[FaultClause, ...] = ()) -> None:
        self.clauses = tuple(clauses)

    def __bool__(self) -> bool:
        return bool(self.clauses)

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultPlan) and self.clauses == other.clauses

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.to_spec()!r})"

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        clauses = tuple(
            FaultClause.parse(chunk)
            for chunk in spec.split(";")
            if chunk.strip()
        )
        return cls(clauses)

    def to_spec(self) -> str:
        return "; ".join(clause.to_spec() for clause in self.clauses)

    def sticky_only(self) -> "FaultPlan":
        """The sub-plan that survives a worker respawn."""
        return FaultPlan(tuple(clause for clause in self.clauses if clause.sticky))

    def for_shard(self, shard: int) -> "FaultPlan":
        """The sub-plan that can ever fire on *shard*."""
        return FaultPlan(
            tuple(
                clause
                for clause in self.clauses
                if clause.shard is None or clause.shard == shard
            )
        )


#: The inactive plan: falsy, no clauses, shared.
NULL_PLAN = FaultPlan()


def resolve_faults(faults: "FaultPlan | str | None" = None) -> "FaultPlan | None":
    """Normalise a faults knob to an active plan or ``None``.

    ``None`` falls back to ``REPRO_FAULTS``; a string is parsed; an
    inactive (empty) plan collapses to ``None`` so callers keep the
    zero-overhead ``is None`` fast path.
    """
    if faults is None:
        faults = os.environ.get(FAULTS_ENV, "").strip()
        if not faults:
            return None
    if isinstance(faults, str):
        faults = FaultPlan.parse(faults)
    if not isinstance(faults, FaultPlan):
        raise ValueError(f"faults must be a FaultPlan, spec string, or None, got {faults!r}")
    return faults if faults else None


class FaultInjector:
    """The worker-side hooks compiled from a :class:`FaultPlan`.

    One injector per worker, built when the parent arms the plan (see the
    ``("faults", ...)`` shard message).  :meth:`on_message` runs before a
    message is handled and may kill or hang the worker;
    :meth:`on_reply` runs after the reply (observability wrapping
    included) is built and may corrupt it.  Control messages (``faults``,
    ``trace``) are never intercepted — the caller simply does not route
    them through the hooks.
    """

    def __init__(self, plan: FaultPlan, shard: int, inline: bool) -> None:
        self.shard = shard
        self.inline = inline
        self._clauses = plan.for_shard(shard).clauses
        self._matches = [0] * len(self._clauses)
        self._fired = [0] * len(self._clauses)
        self._level = 0

    @property
    def armed(self) -> bool:
        return bool(self._clauses)

    def _applies(self, index: int, clause: FaultClause, op: str) -> bool:
        if clause.op is not None and clause.op != op:
            return False
        if clause.level is not None and clause.level != self._level:
            return False
        self._matches[index] += 1
        if clause.nth is not None and self._matches[index] != clause.nth:
            return False
        if self._fired[index] >= clause.times:
            return False
        self._fired[index] += 1
        return True

    def on_message(self, op: str) -> None:
        """Fire any matching ``kill`` / ``hang`` clause before *op* runs."""
        if op in _LEVEL_OPS:
            self._level += 1
        for index, clause in enumerate(self._clauses):
            if clause.kind == "corrupt-reply":
                continue
            if not self._applies(index, clause, op):
                continue
            if clause.kind == "kill":
                if self.inline:
                    raise SimulatedWorkerDeath(
                        f"injected kill on shard {self.shard} (op {op!r})"
                    )
                os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover - dies here
            # hang: inline a sleep would block the parent thread itself,
            # so the injected death stands in for the hang; in a process
            # worker a real sleep lets the parent's deadline detection do
            # its job.
            if self.inline:
                raise SimulatedWorkerDeath(
                    f"injected hang on shard {self.shard} (op {op!r})"
                )
            time.sleep(_HANG_SECONDS)  # pragma: no cover - parent kills us first

    def on_reply(self, op: str, reply):
        """Replace the reply of a matching ``corrupt-reply`` clause."""
        for index, clause in enumerate(self._clauses):
            if clause.kind != "corrupt-reply":
                continue
            if self._applies(index, clause, op):
                return CORRUPTED_REPLY
        return reply


def compile_injector(
    spec: str | None, shard: int, inline: bool
) -> FaultInjector | None:
    """The injector for *shard*, or ``None`` when nothing can ever fire.

    Returning ``None`` (not an idle injector) is what preserves the
    zero-overhead fast path: the worker's per-message check stays a plain
    ``is None``.
    """
    if not spec:
        return None
    injector = FaultInjector(FaultPlan.parse(spec), shard, inline)
    return injector if injector.armed else None


__all__ = [
    "CORRUPTED_REPLY",
    "FAULTS_ENV",
    "FAULT_KINDS",
    "FaultClause",
    "FaultInjector",
    "FaultPlan",
    "NULL_PLAN",
    "SimulatedWorkerDeath",
    "compile_injector",
    "resolve_faults",
]
