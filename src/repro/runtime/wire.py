"""Flat-buffer wire codecs for the sharded runtime.

The sharded runtime's messages — transaction registration, per-level
support batches, session deltas — are plain tuples of graph wires, tid
lists, and bitset buffers.  The default transport pickles them, which is
correct but pays per-object tag-and-memo overhead on exactly the values
that dominate a mining run: thousands of tiny graph wires and sorted tid
lists.  This module encodes those messages as contiguous byte buffers
with a small versioned header: varint-packed integers, delta-coded tid
lists, sequence-compressed vertex ids, and the packed bitset buffers of
:mod:`repro.runtime.bitsets` carried verbatim (they are already flat).

Design rules:

* **Lossless by construction.**  ``decode_message(encode_message(m))``
  returns a tuple *equal* to ``m`` — same nesting, same list/tuple
  distinction, same ints — so the shard worker's behaviour is identical
  under either wire format and golden digests cannot drift.
* **Fallback at message granularity.**  ``encode_message`` returns
  ``None`` for any op or value it does not cover; the caller ships that
  one message over the pickle wire instead.  New ops degrade gracefully.
* **No repro imports.**  The codec works on the wire *tuples*, never on
  live objects, so it can be imported from the worker process entry
  point without dragging the engine in.

The physical envelope is ``(BLOB_OP, op, blob)``: the inner op rides
outside the blob so pool bookkeeping and fault/trace filters can see it
without decoding.  ``ProcessBackend`` may further rewrite the envelope
to ``(SHM_OP, op, segment_name, size)`` and ship the blob through a
``multiprocessing.shared_memory`` segment — see :mod:`repro.runtime.pool`
for the segment lifecycle.
"""

from __future__ import annotations

import os
import struct

__all__ = [
    "BLOB_OP",
    "SHM_OP",
    "WIRES",
    "WIRE_ENV",
    "resolve_wire",
    "encode_message",
    "decode_message",
    "encode_graph_wire",
    "decode_graph_wire",
    "WireFormatError",
]

#: Logical blob envelope op: ``(BLOB_OP, inner_op, blob_bytes)``.
BLOB_OP = "__blob__"

#: Shared-memory envelope op: ``(SHM_OP, inner_op, segment_name, size)``.
SHM_OP = "__shm__"

#: Recognised wire formats, first is the default.
WIRES = ("buffer", "pickle")

#: Environment fallback consulted when no explicit wire format is given.
WIRE_ENV = "REPRO_WIRE"

_MAGIC = b"RW"
_VERSION = 1


class WireFormatError(ValueError):
    """A buffer failed structural validation during decode."""


def resolve_wire(wire: str | None) -> str:
    """Resolve the wire format: explicit value, else ``$REPRO_WIRE``,
    else ``"buffer"``.  Raises ``ValueError`` on unknown formats so a
    typo in the knob fails loudly instead of silently pickling."""
    if wire is None:
        wire = os.environ.get(WIRE_ENV) or WIRES[0]
    if wire not in WIRES:
        raise ValueError(f"unknown wire format {wire!r}; expected one of {WIRES}")
    return wire


# ---------------------------------------------------------------------------
# varint primitives
# ---------------------------------------------------------------------------


def _write_uvarint(out: bytearray, value: int) -> None:
    if value < 0:
        raise WireFormatError(f"uvarint cannot encode negative value {value}")
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_uvarint(buffer: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    length = len(buffer)
    while True:
        if pos >= length:
            raise WireFormatError("truncated varint")
        byte = buffer[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _zigzag(value: int) -> int:
    return value * 2 if value >= 0 else -value * 2 - 1


def _unzigzag(value: int) -> int:
    return value // 2 if value % 2 == 0 else -(value // 2) - 1


def _write_bytes(out: bytearray, data: bytes) -> None:
    _write_uvarint(out, len(data))
    out += data


def _read_bytes(buffer: bytes, pos: int) -> tuple[bytes, int]:
    size, pos = _read_uvarint(buffer, pos)
    end = pos + size
    if end > len(buffer):
        raise WireFormatError("truncated byte field")
    return buffer[pos:end], end


def _write_str(out: bytearray, text: str) -> None:
    _write_bytes(out, text.encode("utf-8"))


def _read_str(buffer: bytes, pos: int) -> tuple[str, int]:
    data, pos = _read_bytes(buffer, pos)
    return data.decode("utf-8"), pos


# ---------------------------------------------------------------------------
# generic tagged values (uids, keys, extensions, bounds, labels)
# ---------------------------------------------------------------------------

_V_NONE = 0
_V_FALSE = 1
_V_TRUE = 2
_V_INT = 3
_V_FLOAT = 4
_V_STR = 5
_V_BYTES = 6
_V_TUPLE = 7
_V_LIST = 8


class _Unencodable(Exception):
    """A value fell outside the codec's closed type universe."""


def _write_value(out: bytearray, value: object) -> None:
    if value is None:
        out.append(_V_NONE)
    elif value is False:
        out.append(_V_FALSE)
    elif value is True:
        out.append(_V_TRUE)
    elif type(value) is int:
        out.append(_V_INT)
        _write_uvarint(out, _zigzag(value))
    elif type(value) is float:
        out.append(_V_FLOAT)
        out += struct.pack("<d", value)
    elif type(value) is str:
        out.append(_V_STR)
        _write_str(out, value)
    elif type(value) is bytes:
        out.append(_V_BYTES)
        _write_bytes(out, value)
    elif type(value) is tuple or type(value) is list:
        out.append(_V_TUPLE if type(value) is tuple else _V_LIST)
        _write_uvarint(out, len(value))
        for item in value:
            _write_value(out, item)
    else:
        raise _Unencodable(type(value).__name__)


def _read_value(buffer: bytes, pos: int) -> tuple[object, int]:
    if pos >= len(buffer):
        raise WireFormatError("truncated value tag")
    tag = buffer[pos]
    pos += 1
    if tag == _V_NONE:
        return None, pos
    if tag == _V_FALSE:
        return False, pos
    if tag == _V_TRUE:
        return True, pos
    if tag == _V_INT:
        raw, pos = _read_uvarint(buffer, pos)
        return _unzigzag(raw), pos
    if tag == _V_FLOAT:
        end = pos + 8
        if end > len(buffer):
            raise WireFormatError("truncated float")
        return struct.unpack("<d", buffer[pos:end])[0], end
    if tag == _V_STR:
        return _read_str(buffer, pos)
    if tag == _V_BYTES:
        return _read_bytes(buffer, pos)
    if tag in (_V_TUPLE, _V_LIST):
        count, pos = _read_uvarint(buffer, pos)
        items = []
        for _ in range(count):
            item, pos = _read_value(buffer, pos)
            items.append(item)
        return (tuple(items) if tag == _V_TUPLE else items), pos
    raise WireFormatError(f"unknown value tag {tag}")


# Column modes.  The message codecs ship parallel per-candidate columns
# (uids, parent uids, extensions, bounds, keys, eviction lists); three
# layouts cover their shapes:
#
# * ``plain`` — count + tagged values; the always-correct baseline.
# * ``interned`` — first-occurrence-ordered unique values (written as a
#   nested column, so unique uid tuples still pack as int pairs) plus a
#   varint index per item.  This is pickle's memo done by *value*: it
#   also collapses equal-but-distinct tuples (fresh extension tuples,
#   repeated bounds) that pickle's identity memo re-serializes.
# * ``intpair`` — for uid columns ``(run_token, counter)`` where every
#   non-``None`` item shares one run token: a None-bitmap, the shared
#   token once, and zigzag-deltas of the counters (near-sequential in
#   practice, so ~1 byte per uid instead of ~7).
_C_PLAIN = 0
_C_INTERNED = 1
_C_INTPAIR = 2


def _intern_key(value):
    """Hash key that never conflates equal values of different types
    (``1 == True == 1.0`` must not collapse — decode would then return
    the wrong type and break lossless round-tripping)."""
    kind = type(value)
    if kind is tuple or kind is list:
        return (kind.__name__, tuple(_intern_key(item) for item in value))
    return (kind.__name__, value)


def _intpair_profile(values):
    """The shared first element if the column fits intpair mode."""
    first = None
    any_pair = False
    for value in values:
        if value is None:
            continue
        if (
            type(value) is tuple
            and len(value) == 2
            and type(value[0]) is int
            and type(value[1]) is int
            and value[0] >= 0
            and value[1] >= 0
        ):
            any_pair = True
            if first is None:
                first = value[0]
            elif value[0] != first:
                return None
        else:
            return None
    return first if any_pair else None


def _write_values(out: bytearray, values, depth: int = 0) -> None:
    if type(values) is not list:
        raise _Unencodable("column shape")
    if values and depth < 2:
        shared = _intpair_profile(values)
        if shared is not None:
            out.append(_C_INTPAIR)
            _write_uvarint(out, len(values))
            _write_uvarint(out, shared)
            bitmap = bytearray((len(values) + 7) // 8)
            for index, value in enumerate(values):
                if value is None:
                    bitmap[index >> 3] |= 1 << (index & 7)
            out += bitmap
            previous = 0
            for value in values:
                if value is None:
                    continue
                _write_uvarint(out, _zigzag(value[1] - previous))
                previous = value[1]
            return
        try:
            unique: dict = {}
            indexes = []
            for value in values:
                key = _intern_key(value)
                slot = unique.setdefault(key, (len(unique), value))
                indexes.append(slot[0])
        except TypeError:
            unique = None  # unhashable member: plain mode
        if unique is not None and len(unique) <= len(values) // 2:
            out.append(_C_INTERNED)
            _write_values(out, [value for _, value in unique.values()], depth + 1)
            _write_uvarint(out, len(indexes))
            for index in indexes:
                _write_uvarint(out, index)
            return
    out.append(_C_PLAIN)
    _write_uvarint(out, len(values))
    for value in values:
        _write_value(out, value)


def _read_values(buffer: bytes, pos: int) -> tuple[list, int]:
    if pos >= len(buffer):
        raise WireFormatError("truncated column mode")
    mode = buffer[pos]
    pos += 1
    if mode == _C_PLAIN:
        count, pos = _read_uvarint(buffer, pos)
        items = []
        for _ in range(count):
            item, pos = _read_value(buffer, pos)
            items.append(item)
        return items, pos
    if mode == _C_INTERNED:
        unique, pos = _read_values(buffer, pos)
        count, pos = _read_uvarint(buffer, pos)
        items = []
        for _ in range(count):
            index, pos = _read_uvarint(buffer, pos)
            if index >= len(unique):
                raise WireFormatError("interned index out of range")
            items.append(unique[index])
        return items, pos
    if mode == _C_INTPAIR:
        count, pos = _read_uvarint(buffer, pos)
        shared, pos = _read_uvarint(buffer, pos)
        bitmap_size = (count + 7) // 8
        end = pos + bitmap_size
        if end > len(buffer):
            raise WireFormatError("truncated intpair bitmap")
        bitmap = buffer[pos:end]
        pos = end
        items: list = []
        previous = 0
        for index in range(count):
            if bitmap[index >> 3] & (1 << (index & 7)):
                items.append(None)
                continue
            raw, pos = _read_uvarint(buffer, pos)
            previous += _unzigzag(raw)
            items.append((shared, previous))
        return items, pos
    raise WireFormatError(f"unknown column mode {mode}")


# ---------------------------------------------------------------------------
# graph wires
# ---------------------------------------------------------------------------

_IDS_SEQUENTIAL = 0  # ids are f"{prefix}{start}" .. f"{prefix}{start+n-1}"
_IDS_GENERIC = 1  # each id is a tagged value


def _write_graph_wire(out: bytearray, wire) -> None:
    """Encode one ``CompactGraph.to_wire()`` tuple.

    Layout: name · n_vertices · vertex label ids · n_edges ·
    (source, target, label id) triples · vertex-id block.  Vertex ids
    are almost always ``"v0".."vN"`` or ``"p0".."pN"``; those collapse
    to a prefix plus a start index instead of N strings.
    """
    if type(wire) is not tuple or len(wire) != 4:
        raise _Unencodable("graph wire shape")
    name, vertex_labels, edges, vertex_ids = wire
    if type(name) is not str or type(vertex_labels) is not tuple:
        raise _Unencodable("graph wire fields")
    if type(edges) is not list or type(vertex_ids) is not tuple:
        raise _Unencodable("graph wire fields")
    if len(vertex_ids) != len(vertex_labels):
        # The id block is keyed off the vertex count on decode; a wire
        # that breaks the invariant must ride the pickle fallback.
        raise _Unencodable("vertex id/label count mismatch")
    _write_str(out, name)
    _write_uvarint(out, len(vertex_labels))
    for label in vertex_labels:
        if type(label) is not int or label < 0:
            raise _Unencodable("vertex label")
        _write_uvarint(out, label)
    _write_uvarint(out, len(edges))
    for edge in edges:
        if type(edge) is not tuple or len(edge) != 3:
            raise _Unencodable("edge shape")
        source, target, label = edge
        for part in (source, target, label):
            if type(part) is not int or part < 0:
                raise _Unencodable("edge field")
        _write_uvarint(out, source)
        _write_uvarint(out, target)
        _write_uvarint(out, label)
    prefix = _sequential_prefix(vertex_ids)
    if prefix is not None:
        out.append(_IDS_SEQUENTIAL)
        _write_str(out, prefix[0])
        _write_uvarint(out, prefix[1])
    else:
        out.append(_IDS_GENERIC)
        for vid in vertex_ids:
            _write_value(out, vid)


def _sequential_prefix(vertex_ids: tuple) -> tuple[str, int] | None:
    """Return ``(prefix, start)`` when ids follow ``f"{prefix}{start+i}"``."""
    if not vertex_ids or type(vertex_ids[0]) is not str:
        return None
    first = vertex_ids[0]
    digits = 0
    while digits < len(first) and first[len(first) - 1 - digits].isdigit():
        digits += 1
    if digits == 0:
        return None
    prefix = first[: len(first) - digits]
    tail = first[len(first) - digits :]
    if len(tail) > 1 and tail[0] == "0":
        return None  # zero-padded ids would not round-trip through int()
    start = int(tail)
    for index, vid in enumerate(vertex_ids):
        if vid != f"{prefix}{start + index}":
            return None
    return prefix, start


def _read_graph_wire(buffer: bytes, pos: int) -> tuple[tuple, int]:
    name, pos = _read_str(buffer, pos)
    n_vertices, pos = _read_uvarint(buffer, pos)
    labels = []
    for _ in range(n_vertices):
        label, pos = _read_uvarint(buffer, pos)
        labels.append(label)
    n_edges, pos = _read_uvarint(buffer, pos)
    edges = []
    for _ in range(n_edges):
        source, pos = _read_uvarint(buffer, pos)
        target, pos = _read_uvarint(buffer, pos)
        label, pos = _read_uvarint(buffer, pos)
        edges.append((source, target, label))
    if pos >= len(buffer):
        raise WireFormatError("truncated vertex-id block")
    mode = buffer[pos]
    pos += 1
    if mode == _IDS_SEQUENTIAL:
        prefix, pos = _read_str(buffer, pos)
        start, pos = _read_uvarint(buffer, pos)
        ids = tuple(f"{prefix}{start + i}" for i in range(n_vertices))
    elif mode == _IDS_GENERIC:
        parts = []
        for _ in range(n_vertices):
            part, pos = _read_value(buffer, pos)
            parts.append(part)
        ids = tuple(parts)
    else:
        raise WireFormatError(f"unknown vertex-id mode {mode}")
    return (name, tuple(labels), edges, ids), pos


def encode_graph_wire(wire) -> bytes:
    """Encode a single ``CompactGraph.to_wire()`` tuple with header."""
    out = bytearray(_MAGIC)
    out.append(_VERSION)
    try:
        _write_graph_wire(out, wire)
    except _Unencodable as exc:
        raise WireFormatError(f"graph wire not flat-encodable: {exc}") from exc
    return bytes(out)


def decode_graph_wire(buffer: bytes) -> tuple:
    """Decode a buffer produced by :func:`encode_graph_wire`."""
    pos = _check_header(buffer)
    wire, pos = _read_graph_wire(bytes(buffer), pos)
    if pos != len(buffer):
        raise WireFormatError("trailing bytes after graph wire")
    return wire


def _check_header(buffer) -> int:
    buffer = bytes(buffer[:3])
    if buffer[:2] != _MAGIC:
        raise WireFormatError("bad magic")
    if buffer[2] != _VERSION:
        raise WireFormatError(f"unsupported wire version {buffer[2]}")
    return 3


# ---------------------------------------------------------------------------
# tid lists (sorted ints -> delta varints)
# ---------------------------------------------------------------------------


def _write_tid_list(out: bytearray, tids) -> None:
    if type(tids) is not list:
        raise _Unencodable("tid list shape")
    _write_uvarint(out, len(tids))
    previous = 0
    first = True
    for tid in tids:
        if type(tid) is not int:
            raise _Unencodable("tid type")
        if first:
            _write_uvarint(out, _zigzag(tid))
            first = False
        else:
            delta = tid - previous
            if delta <= 0:
                raise _Unencodable("unsorted tid list")
            _write_uvarint(out, delta)
        previous = tid


def _read_tid_list(buffer: bytes, pos: int) -> tuple[list, int]:
    count, pos = _read_uvarint(buffer, pos)
    tids = []
    previous = 0
    for index in range(count):
        raw, pos = _read_uvarint(buffer, pos)
        previous = _unzigzag(raw) if index == 0 else previous + raw
        tids.append(previous)
    return tids, pos


def _write_tid_lists(out: bytearray, tid_lists) -> None:
    if type(tid_lists) is not list:
        raise _Unencodable("tid lists shape")
    _write_uvarint(out, len(tid_lists))
    for tids in tid_lists:
        _write_tid_list(out, tids)


def _read_tid_lists(buffer: bytes, pos: int) -> tuple[list, int]:
    count, pos = _read_uvarint(buffer, pos)
    lists = []
    for _ in range(count):
        tids, pos = _read_tid_list(buffer, pos)
        lists.append(tids)
    return lists, pos


def _write_wires(out: bytearray, wires) -> None:
    if type(wires) is not list:
        raise _Unencodable("wire list shape")
    _write_uvarint(out, len(wires))
    for wire in wires:
        _write_graph_wire(out, wire)


def _read_wires(buffer: bytes, pos: int) -> tuple[list, int]:
    count, pos = _read_uvarint(buffer, pos)
    wires = []
    for _ in range(count):
        wire, pos = _read_graph_wire(buffer, pos)
        wires.append(wire)
    return wires, pos


# ---------------------------------------------------------------------------
# session payloads: ("w", wire, tid_buffer) | ("d", edge, new_label, mask)
# ---------------------------------------------------------------------------

_P_FULL = 0
_P_DELTA = 1


def _write_payloads(out: bytearray, payloads) -> None:
    if type(payloads) is not list:
        raise _Unencodable("payload list shape")
    _write_uvarint(out, len(payloads))
    for payload in payloads:
        if type(payload) is not tuple:
            raise _Unencodable("payload shape")
        if len(payload) == 3 and payload[0] == "w":
            _, wire, tid_buffer = payload
            if type(tid_buffer) is not bytes:
                raise _Unencodable("tid buffer type")
            out.append(_P_FULL)
            _write_graph_wire(out, wire)
            _write_bytes(out, tid_buffer)
        elif len(payload) == 4 and payload[0] == "d":
            _, edge_label, new_label, mask = payload
            if type(edge_label) is not int or edge_label < 0:
                raise _Unencodable("delta edge label")
            if type(mask) is not bytes:
                raise _Unencodable("delta mask type")
            out.append(_P_DELTA)
            _write_uvarint(out, edge_label)
            _write_value(out, new_label)
            _write_bytes(out, mask)
        else:
            raise _Unencodable("payload tag")


def _read_payloads(buffer: bytes, pos: int) -> tuple[list, int]:
    count, pos = _read_uvarint(buffer, pos)
    payloads = []
    for _ in range(count):
        if pos >= len(buffer):
            raise WireFormatError("truncated payload tag")
        tag = buffer[pos]
        pos += 1
        if tag == _P_FULL:
            wire, pos = _read_graph_wire(buffer, pos)
            tid_buffer, pos = _read_bytes(buffer, pos)
            payloads.append(("w", wire, tid_buffer))
        elif tag == _P_DELTA:
            edge_label, pos = _read_uvarint(buffer, pos)
            new_label, pos = _read_value(buffer, pos)
            mask, pos = _read_bytes(buffer, pos)
            payloads.append(("d", edge_label, new_label, mask))
        else:
            raise WireFormatError(f"unknown payload tag {tag}")
    return payloads, pos


# ---------------------------------------------------------------------------
# message registry
# ---------------------------------------------------------------------------

_OP_CODES = {
    "labels": 1,
    "add": 2,
    "release": 3,
    "batch": 4,
    "level": 5,
    "slevel": 6,
    "sevict": 7,
    "drop_anchors": 8,
}
_OP_NAMES = {code: name for name, code in _OP_CODES.items()}


def _encode_body(out: bytearray, message: tuple) -> None:
    op = message[0]
    if op == "labels":
        (_, labels) = message
        _write_values(out, labels)
    elif op == "add":
        (_, wires) = message
        _write_wires(out, wires)
    elif op == "release":
        (_, tids) = message
        _write_tid_list(out, tids)
    elif op in ("sevict", "drop_anchors"):
        (_, items) = message
        _write_values(out, items)
    elif op == "batch":
        (_, wires, tid_lists, keys) = message
        _write_wires(out, wires)
        _write_tid_lists(out, tid_lists)
        _write_values(out, keys)
    elif op == "level":
        (_, wires, tid_lists, keys, uids, parent_uids, extensions, bounds) = message
        _write_wires(out, wires)
        _write_tid_lists(out, tid_lists)
        for column in (keys, uids, parent_uids, extensions, bounds):
            _write_values(out, column)
    elif op == "slevel":
        (_, evictions, payloads, uids, parent_uids, extensions, bounds) = message
        _write_values(out, evictions)
        _write_payloads(out, payloads)
        for column in (uids, parent_uids, extensions, bounds):
            _write_values(out, column)
    else:  # pragma: no cover - guarded by the registry check in encode_message
        raise _Unencodable(f"op {op!r}")


def encode_message(message: tuple) -> bytes | None:
    """Encode a logical shard message as a flat buffer.

    Returns ``None`` when the message's op is not in the registry or any
    value falls outside the codec's type universe — the caller must then
    ship the original message over the pickle wire.  Column lists must
    match the op's arity; a mismatched message also returns ``None``.
    """
    if type(message) is not tuple or not message:
        return None
    code = _OP_CODES.get(message[0])
    if code is None:
        return None
    out = bytearray(_MAGIC)
    out.append(_VERSION)
    out.append(code)
    try:
        _encode_body(out, message)
    except (_Unencodable, ValueError, TypeError):
        return None
    return bytes(out)


def decode_message(buffer: bytes) -> tuple:
    """Decode a buffer from :func:`encode_message` back to the exact
    logical message tuple.  Raises :class:`WireFormatError` on any
    structural mismatch — corruption must surface, not deserialize."""
    buffer = bytes(buffer)
    pos = _check_header(buffer)
    if pos >= len(buffer):
        raise WireFormatError("missing op code")
    op = _OP_NAMES.get(buffer[pos])
    if op is None:
        raise WireFormatError(f"unknown op code {buffer[pos]}")
    pos += 1
    if op == "labels":
        labels, pos = _read_values(buffer, pos)
        message = ("labels", labels)
    elif op == "add":
        wires, pos = _read_wires(buffer, pos)
        message = ("add", wires)
    elif op == "release":
        tids, pos = _read_tid_list(buffer, pos)
        message = ("release", tids)
    elif op in ("sevict", "drop_anchors"):
        items, pos = _read_values(buffer, pos)
        message = (op, items)
    elif op == "batch":
        wires, pos = _read_wires(buffer, pos)
        tid_lists, pos = _read_tid_lists(buffer, pos)
        keys, pos = _read_values(buffer, pos)
        message = ("batch", wires, tid_lists, keys)
    elif op == "level":
        wires, pos = _read_wires(buffer, pos)
        tid_lists, pos = _read_tid_lists(buffer, pos)
        columns = []
        for _ in range(5):
            column, pos = _read_values(buffer, pos)
            columns.append(column)
        message = ("level", wires, tid_lists, *columns)
    else:  # slevel
        evictions, pos = _read_values(buffer, pos)
        payloads, pos = _read_payloads(buffer, pos)
        columns = []
        for _ in range(4):
            column, pos = _read_values(buffer, pos)
            columns.append(column)
        message = ("slevel", evictions, payloads, *columns)
    if pos != len(buffer):
        raise WireFormatError("trailing bytes after message body")
    return message
