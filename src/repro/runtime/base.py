"""The mining-runtime abstraction and its serial reference implementation.

A :class:`MiningRuntime` is what the level-wise miners talk to when they
need support counts: it owns the registered transaction corpus (however it
is physically laid out — one engine, K in-process shards, K worker
processes) and answers batched per-level support queries over global
transaction ids.  :class:`SerialRuntime` is the degenerate single-engine
case and reproduces the pre-runtime behaviour exactly — same engine calls,
same verdict-cache traffic, same results — so it is both the default and
the determinism oracle for the sharded implementations.

Worker counts come from an explicit setting or, when unset, from the
``REPRO_WORKERS`` environment variable (``0`` / ``1`` mean serial); the
process/serial choice of the sharded runtime likewise falls back to
``REPRO_BACKEND``.  That lets a CI matrix run the whole test suite against
the process backend without touching any call site.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.graphs.engine import EmbeddingTask, MatchEngine
from repro.graphs.labeled_graph import LabeledGraph
from repro.runtime.bitsets import bits_of, tids_of

#: Environment variable supplying the default worker count.
WORKERS_ENV = "REPRO_WORKERS"
#: Environment variable supplying the default sharded backend.
BACKEND_ENV = "REPRO_BACKEND"
#: Backends understood by the sharded runtime's worker pool.
BACKENDS = ("serial", "process")


def resolve_workers(workers: int | None = None) -> int:
    """Validate *workers*, falling back to ``REPRO_WORKERS`` when ``None``.

    ``0`` and ``1`` both mean "serial" (no sharding); anything negative or
    non-integer is rejected.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 0
        try:
            workers = int(raw)
        except ValueError as error:
            raise ValueError(f"{WORKERS_ENV}={raw!r} is not an integer") from error
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ValueError(f"workers must be an integer, got {workers!r}")
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    return workers


def resolve_backend(backend: str | None = None) -> str:
    """Validate *backend*, falling back to ``REPRO_BACKEND`` when ``None``."""
    if backend is None:
        backend = os.environ.get(BACKEND_ENV, "").strip() or "process"
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    return backend


def merge_stats(snapshots: Iterable[dict[str, int]]) -> dict[str, int]:
    """Key-wise sum of engine stat snapshots (the shard aggregation rule)."""
    merged: dict[str, int] = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            merged[key] = merged.get(key, 0) + value
    return merged


@dataclass
class LevelRequest:
    """One candidate of an incremental per-level support batch.

    ``tid_bits`` is the candidate's scan set as a *global-tid bitset* —
    for a derived candidate, the intersection of its parents' supporting
    sets.  ``uid`` / ``parent_uid`` / ``extension`` address the engine's
    embedding store (see :class:`~repro.graphs.engine.EmbeddingTask`);
    anchors are engine-local (shard-local under a sharded runtime), so a
    request ships only these small tokens, never embeddings.

    ``extension_labels`` carries the one extension edge's labels — ``(edge
    label, new-vertex label or None)`` — which is everything a shard that
    already holds the parent pattern needs to rebuild this candidate
    without receiving its full wire form (the mining-session delta
    protocol).  Requests without derivation info leave it ``None`` and
    always ship in full.
    """

    pattern: LabeledGraph
    tid_bits: int
    key: object = None
    uid: object = None
    parent_uid: object = None
    extension: tuple[int, int, bool] | None = None
    extension_labels: tuple | None = None


#: Counter keys every :class:`MiningSession` reports per level (see
#: :meth:`MiningSession.take_telemetry`).  ``wire_bytes`` and
#: ``planning_seconds`` are parent-side costs of shipping the level;
#: ``patterns_full`` / ``patterns_delta`` split shipped candidates by
#: protocol (a candidate sent to two shards counts twice);
#: ``store_hits`` counts resident-parent reconstructions as *observed by
#: the shards* and reported on level replies — it equals
#: ``patterns_delta`` whenever the parent's residency model and the
#: shard stores agree, so the pair is a protocol-consistency
#: cross-check; and ``evictions`` counts per-shard pattern-store entries
#: retired (miner-driven and shard-capacity evictions on one ruler; a
#: stateless session, having no store, reports zero).
#: ``shard_scan_max`` / ``shard_scan_min`` expose the level's placement
#: skew: the largest and smallest per-shard scan workload (candidate
#: tids assigned to the shard, summed over the level's requests; an idle
#: shard counts zero).  A corpus whose heavy transactions pile onto one
#: shard shows a wide max/min gap here — the signal the power-law stress
#: scenario asserts on.  Serial runtimes have no shards and report zero.
SESSION_TELEMETRY_KEYS = (
    "wire_bytes",
    "planning_seconds",
    "patterns_full",
    "patterns_delta",
    "store_hits",
    "evictions",
    "shard_scan_max",
    "shard_scan_min",
    # Placement balance (see repro.runtime.planner.PlacementPolicy): the
    # largest and smallest cumulative scan weight any shard has been
    # assigned by the placement policy as of this level.  Recording the
    # running balance per level keeps rebalancing decisions reproducible
    # and auditable from telemetry alone.  Zero on serial runtimes.
    "placement_weight_max",
    "placement_weight_min",
    # Recovery counters (see repro.runtime.shards): worker respawns the
    # supervisor performed while serving this level and level replays it
    # re-dispatched to rebuilt workers.  Zero on every healthy level and
    # on runtimes without a supervisor.
    "worker_restarts",
    "level_replays",
)


def zero_telemetry() -> dict[str, float]:
    """A fresh all-zero session telemetry record."""
    return {key: 0 for key in SESSION_TELEMETRY_KEYS}


class MiningSession(ABC):
    """A stateful, multi-level mining conversation with one runtime.

    A level-wise miner opens one session per mining run and drives every
    level through it.  The session is what lets a runtime keep per-level
    state alive between calls — resident shard-side pattern stores, delta
    shipping of derived candidates, deferred evictions — none of which
    the stateless :meth:`MiningRuntime.batch_support_level` can amortise.
    Sessions never change mining output: :meth:`support_level` must
    return exactly what the runtime's stateless method would.
    """

    #: Whether :meth:`support_level` requests benefit from carrying
    #: precomputed verdict-cache keys.  Keys only feed the engine-side
    #: verdict LRU of the pure-python kernel; the vectorized kernel and
    #: the sharded session protocol never consult them, and a miner that
    #: checks this flag can skip the per-candidate canonicalisation that
    #: producing a key costs.  Keys are an optimisation either way —
    #: sending ``key=False`` (uncacheable) is always correct.
    wants_keys: bool = True

    def __init__(self) -> None:
        self._telemetry = zero_telemetry()

    @abstractmethod
    def support_level(
        self,
        requests: Sequence[LevelRequest],
        min_support: int | None = None,
    ) -> list[int]:
        """Per-request supporting-tid bitsets for one mining level.

        Semantics are identical to
        :meth:`MiningRuntime.batch_support_level`; a session is free to
        answer through resident state instead of shipping each request
        whole.
        """

    @abstractmethod
    def evict(self, uids: Iterable[object]) -> None:
        """Retire *uids*: stored anchors and any resident pattern state.

        Implementations may defer the actual cleanup (e.g. piggyback it
        on the next level shipment) — retired uids are never referenced
        again, so laziness costs memory, never correctness.
        """

    def take_telemetry(self) -> dict[str, float]:
        """Counters accumulated since the last call, then reset.

        Always contains exactly :data:`SESSION_TELEMETRY_KEYS`; a session
        with nothing to report returns zeros.
        """
        taken = self._telemetry
        self._telemetry = zero_telemetry()
        return taken

    def close(self) -> None:
        """Flush deferred cleanup and end the session; idempotent."""

    def __enter__(self) -> "MiningSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class DelegatingSession(MiningSession):
    """A stateless session: every call delegates to the runtime directly.

    This is the default session of every runtime, and the only session
    :class:`SerialRuntime` ever hands out — the delegation preserves the
    exact engine-call sequence of the sessionless path, so serial mining
    stays byte-identical whether or not a session is in the loop.
    ``wire_bytes`` telemetry is read from the runtime's
    ``wire_bytes_shipped`` counter when it keeps one (sharded runtimes
    do), which is what lets a full-wire sharded baseline be measured
    through the same telemetry as the delta protocol.
    """

    def __init__(self, runtime: "MiningRuntime") -> None:
        super().__init__()
        self._runtime = runtime
        # Levels served so far; the miner primes level 1 first, so call
        # N is mining level N — used to stamp gathered worker spans.
        self._level = 0

    @property
    def wants_keys(self) -> bool:
        # The runtime knows whether its engines' kernel consults the
        # verdict cache (see ``MiningRuntime.wants_verdict_keys``).
        return getattr(self._runtime, "wants_verdict_keys", True)

    def _wire_counter(self) -> int:
        return getattr(self._runtime, "wire_bytes_shipped", 0)

    def _posted_counter(self) -> int | None:
        return getattr(self._runtime, "level_patterns_posted", None)

    def support_level(
        self,
        requests: Sequence[LevelRequest],
        min_support: int | None = None,
    ) -> list[int]:
        self._level += 1
        wire_before = self._wire_counter()
        posted_before = self._posted_counter()
        recovery = getattr(self._runtime, "recovery", None)
        recovery_before = dict(recovery) if recovery is not None else None
        supports = self._runtime.batch_support_level(requests, min_support)
        self._telemetry["wire_bytes"] += self._wire_counter() - wire_before
        if recovery_before is not None:
            # Supervised runtimes count respawns and replays; surface the
            # delta this level caused, same pattern as the wire counter.
            for key in ("worker_restarts", "level_replays"):
                self._telemetry[key] += recovery[key] - recovery_before[key]
        if posted_before is not None:
            # Sharded runtimes count the full wires they actually posted
            # — one per (request, shard) pair, the same ruler the
            # stateful session and the shard-side stats counters use.
            self._telemetry["patterns_full"] += self._posted_counter() - posted_before
        else:
            # One engine, one "shard": per-(request, shard) degenerates
            # to one shipment per request.
            self._telemetry["patterns_full"] += len(requests)
        # Sharded runtimes record each level's per-shard scan workload;
        # surface the placement skew (absent attribute on SerialRuntime:
        # one engine, no skew to report).
        scan_units = getattr(self._runtime, "last_level_scan_units", None)
        if scan_units:
            self._telemetry["shard_scan_max"] = max(scan_units)
            self._telemetry["shard_scan_min"] = min(scan_units)
        placement_loads = getattr(self._runtime, "placement_loads", None)
        if placement_loads:
            self._telemetry["placement_weight_max"] = max(placement_loads)
            self._telemetry["placement_weight_min"] = min(placement_loads)
        # Sharded runtimes buffer the worker spans a tracing run gathers;
        # stamp them with this level (no-op attribute on SerialRuntime).
        drain = getattr(self._runtime, "drain_worker_spans", None)
        if drain is not None:
            drain(level=self._level)
        return supports

    def evict(self, uids: Iterable[object]) -> None:
        # No pattern store behind a stateless session, so no store
        # evictions to report — only the wire the retirement costs.
        before = self._wire_counter()
        self._runtime.drop_anchors(list(uids))
        self._telemetry["wire_bytes"] += self._wire_counter() - before


class MiningRuntime(ABC):
    """Execution substrate for TID-based support counting.

    Transactions are registered once and addressed by the *global* ids the
    runtime hands back; how they are distributed across shards or
    processes is the runtime's business.  All implementations must return
    identical support sets for identical inputs — parallelism is never
    allowed to change mining output.
    """

    @abstractmethod
    def add_transactions(self, transactions: Sequence[LabeledGraph]) -> list[int]:
        """Register *transactions*; returns their global tids."""

    @abstractmethod
    def release_transactions(self, tids: Iterable[int]) -> None:
        """Drop the references held for *tids* (tids are never reused)."""

    @abstractmethod
    def batch_support(
        self,
        patterns: Sequence[LabeledGraph],
        tid_lists: Sequence[Sequence[int]] | None = None,
        pattern_keys: Sequence[object] | None = None,
    ) -> list[frozenset[int]]:
        """Per-pattern supporting global tids for a whole candidate batch.

        ``tid_lists[i]`` restricts pattern ``i`` to those global tids;
        ``None`` scans every live transaction for every pattern.
        ``pattern_keys`` optionally carries each pattern's precomputed
        verdict-cache key (canonical-code string, ``False`` for
        uncacheable, ``None`` for unknown) so shards never redo the
        canonicalisation a caller has already memoized.
        """

    def support(
        self, pattern: LabeledGraph, tids: Sequence[int] | None = None
    ) -> frozenset[int]:
        """Supporting global tids of a single pattern."""
        return self.batch_support([pattern], None if tids is None else [tids])[0]

    @abstractmethod
    def batch_support_level(
        self,
        requests: Sequence[LevelRequest],
        min_support: int | None = None,
    ) -> list[int]:
        """Per-request supporting-tid *bitsets* for one mining level.

        The incremental counterpart of :meth:`batch_support`: requests
        carry global-tid bitsets and embedding-store derivations, answers
        come back as global-tid bitsets (shard results merge with ``|``).
        *min_support* arms per-pattern early abort — a request whose
        support provably cannot reach it may return a partial bitset,
        always of population below the threshold.  Requests whose
        patterns survive are counted exactly; together with the exactness
        of extension-vs-search verdicts this keeps every runtime's mining
        output identical to the serial full-search reference.
        """

    def drop_anchors(self, uids: Iterable[object]) -> None:
        """Forget stored embeddings for *uids* on every shard (no-op default)."""

    def open_session(self) -> MiningSession:
        """Open a mining session for one level-wise run.

        The default is a :class:`DelegatingSession` (stateless, exact
        same calls as driving the runtime directly); runtimes with
        per-level state worth keeping alive override this.  The caller
        owns the session and must :meth:`MiningSession.close` it.
        """
        return DelegatingSession(self)

    @abstractmethod
    def stats(self) -> dict[str, int]:
        """Aggregated engine counters across every shard, plus runtime info."""

    def close(self) -> None:
        """Release any workers / OS resources; idempotent."""

    def __enter__(self) -> "MiningRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialRuntime(MiningRuntime):
    """Single-engine runtime reproducing the pre-runtime behaviour exactly.

    Support queries go through :meth:`MatchEngine.support` pattern by
    pattern — the same calls, in the same order, as the miners made before
    the runtime existed — so every existing test and example is bitwise
    unchanged under the default runtime.  (The batched transaction-major
    pass is the sharded runtimes' job; see
    :class:`~repro.runtime.shards.ShardedEngine`.)
    """

    def __init__(
        self, engine: MatchEngine | None = None, kernel: str | None = None
    ) -> None:
        if engine is not None and kernel is not None and engine.kernel != kernel:
            raise ValueError(
                f"engine already resolved kernel {engine.kernel!r}; "
                f"cannot override with {kernel!r}"
            )
        self.engine = engine if engine is not None else MatchEngine(kernel=kernel)

    @property
    def wants_verdict_keys(self) -> bool:
        """Whether level requests should carry verdict-cache keys.

        Only the pure-python kernel probes the verdict LRU; under the
        vectorized kernel keys would be computed and then ignored, so
        sessions report them unwanted and the miner skips the
        canonicalisation (see :attr:`MiningSession.wants_keys`).
        """
        return self.engine.kernel == "python"

    def add_transactions(self, transactions: Sequence[LabeledGraph]) -> list[int]:
        return self.engine.add_transactions(transactions)

    def release_transactions(self, tids: Iterable[int]) -> None:
        self.engine.release_transactions(tids)

    def batch_support(
        self,
        patterns: Sequence[LabeledGraph],
        tid_lists: Sequence[Sequence[int]] | None = None,
        pattern_keys: Sequence[object] | None = None,
    ) -> list[frozenset[int]]:
        # pattern_keys is accepted for interface parity but unused: the
        # engine's own per-index memoization already makes keys free here.
        if tid_lists is not None and len(tid_lists) != len(patterns):
            raise ValueError("tid_lists must align with patterns")
        return [
            self.engine.support(
                pattern, None if tid_lists is None else tid_lists[position]
            )
            for position, pattern in enumerate(patterns)
        ]

    def batch_support_level(
        self,
        requests: Sequence[LevelRequest],
        min_support: int | None = None,
    ) -> list[int]:
        tasks = [
            EmbeddingTask(
                pattern=request.pattern,
                tids=tids_of(request.tid_bits),
                key=request.key,
                uid=request.uid,
                parent_uid=request.parent_uid,
                extension=request.extension,
                abort_below=min_support,
            )
            for request in requests
        ]
        return [bits_of(tids) for tids in self.engine.support_with_embeddings(tasks)]

    def drop_anchors(self, uids: Iterable[object]) -> None:
        self.engine.drop_anchors(uids)

    def stats(self) -> dict[str, int]:
        snapshot = self.engine.stats_snapshot()
        snapshot["shards"] = 1
        # Nothing ever crosses a wire here; report the session-protocol
        # counters as explicit zeros so stat consumers see stable keys
        # whichever runtime produced the run.
        snapshot["wire_bytes_shipped"] = 0
        snapshot["patterns_shipped_full"] = 0
        snapshot["patterns_shipped_delta"] = 0
        snapshot["session_store_evictions"] = 0
        # No workers, no supervisor: recovery counters are stable zeros.
        snapshot["worker_restarts"] = 0
        snapshot["level_replays"] = 0
        snapshot["worker_degradations"] = 0
        return snapshot
