"""Worker pools for the sharded mining runtime.

A :class:`WorkerPool` runs one message *handler* per worker under a simple
request/response protocol: every :meth:`~WorkerPool.send` to a worker must
be matched by exactly one :meth:`~WorkerPool.recv` from it, and messages
to one worker are processed in order.  The split into ``send`` / ``recv``
is what buys parallelism with the process backend — the caller sends to
every shard first and only then starts collecting replies, so all workers
compute concurrently.

Two backends implement the protocol:

* :class:`SerialBackend` — handlers run inline in the calling process.
  Same message flow, same wire encoding discipline at the layer above, no
  concurrency: the determinism / debugging backend.
* :class:`ProcessBackend` — one daemon ``multiprocessing`` process per
  worker, connected by a pipe.  Handler exceptions are caught in the
  worker, shipped back as a tagged traceback, and re-raised in the parent
  as :class:`WorkerError`.

Handlers are created *inside* each worker from a picklable zero-argument
factory (a class or function), so process workers never receive parent
state except through messages.
"""

from __future__ import annotations

import multiprocessing
import traceback
from abc import ABC, abstractmethod
from collections import deque
from typing import Any, Callable

#: Tag for replies carrying a worker-side exception.
_ERROR = "__worker_error__"
#: Message asking a worker's main loop to exit.
_STOP = "__stop__"


class WorkerError(RuntimeError):
    """A handler raised inside a worker; carries the remote traceback."""


def _raise_if_error(worker: int, reply):
    """Re-raise a tagged error reply as :class:`WorkerError`; pass others.

    Shared by both backends so a handler failure surfaces identically —
    at :meth:`WorkerPool.recv` time, wrapped with the handler-side
    traceback — whether the handler ran inline or in a worker process.
    The deferred raise is what keeps scatter/gather dispatch safe: every
    queued send still gets its matching recv, so one failing shard can
    never leave another shard's reply stranded in a pipe.
    """
    if isinstance(reply, tuple) and len(reply) == 2 and reply[0] == _ERROR:
        raise WorkerError(f"worker {worker} failed:\n{reply[1]}")
    return reply


class WorkerPool(ABC):
    """N workers, each running one handler under send/recv message passing."""

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError(f"a worker pool needs at least one worker, got {n_workers}")
        self.n_workers = n_workers
        self._closed = False

    @abstractmethod
    def send(self, worker: int, message: tuple) -> None:
        """Queue *message* for *worker* (returns immediately)."""

    @abstractmethod
    def recv(self, worker: int) -> Any:
        """The reply to the oldest unanswered :meth:`send` to *worker*."""

    def call(self, worker: int, message: tuple) -> Any:
        """Send and wait for the reply."""
        self.send(worker, message)
        return self.recv(worker)

    def broadcast(self, message: tuple) -> list[Any]:
        """Send *message* to every worker, then collect every reply."""
        for worker in range(self.n_workers):
            self.send(worker, message)
        return [self.recv(worker) for worker in range(self.n_workers)]

    def close(self) -> None:
        """Shut every worker down; idempotent."""
        self._closed = True

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialBackend(WorkerPool):
    """In-process pool: handlers execute inline at :meth:`send` time.

    Handler exceptions are captured as tagged error replies and re-raised
    at :meth:`recv` as :class:`WorkerError` — the same failure contract
    as the process backend, so callers (and tests) exercise one error
    path whichever backend is under them.
    """

    def __init__(self, n_workers: int, handler_factory: Callable[[], Callable[[tuple], Any]]) -> None:
        super().__init__(n_workers)
        self._handlers = [handler_factory() for _ in range(n_workers)]
        self._replies: list[deque] = [deque() for _ in range(n_workers)]

    def send(self, worker: int, message: tuple) -> None:
        if self._closed:
            raise RuntimeError("pool is closed")
        try:
            reply = self._handlers[worker](message)
        except Exception:
            # Exception, not BaseException: handlers run inline here, so
            # a KeyboardInterrupt/SystemExit must stop the caller now,
            # not resurface later as a shard failure.  (The process
            # worker's loop does catch BaseException — there the worker
            # is isolated and the parent must still get a reply.)
            reply = (_ERROR, traceback.format_exc())
        self._replies[worker].append(reply)

    def recv(self, worker: int) -> Any:
        return _raise_if_error(worker, self._replies[worker].popleft())


def _worker_main(connection, handler_factory) -> None:
    """Entry point of a process worker: build the handler, serve the pipe."""
    handler = handler_factory()
    while True:
        try:
            message = connection.recv()
        except EOFError:
            break
        if message == (_STOP,):
            break
        try:
            reply = handler(message)
        except BaseException:
            reply = (_ERROR, traceback.format_exc())
        try:
            connection.send(reply)
        except BrokenPipeError:
            break
    connection.close()


class ProcessBackend(WorkerPool):
    """One daemon process per worker, pipes for transport.

    ``fork`` is preferred when the platform offers it (no re-import, the
    cheapest start); otherwise the context default (``spawn``) is used, for
    which *handler_factory* must be importable, not a closure.
    """

    def __init__(
        self,
        n_workers: int,
        handler_factory: Callable[[], Callable[[tuple], Any]],
        start_method: str | None = None,
    ) -> None:
        super().__init__(n_workers)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else None
        context = multiprocessing.get_context(start_method)
        self._connections = []
        self._processes = []
        for _ in range(n_workers):
            parent_end, worker_end = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(worker_end, handler_factory),
                daemon=True,
            )
            process.start()
            worker_end.close()
            self._connections.append(parent_end)
            self._processes.append(process)

    def send(self, worker: int, message: tuple) -> None:
        if self._closed:
            raise RuntimeError("pool is closed")
        self._connections[worker].send(message)

    def recv(self, worker: int) -> Any:
        return _raise_if_error(worker, self._connections[worker].recv())

    def close(self) -> None:
        if self._closed:
            return
        super().close()
        for connection in self._connections:
            try:
                connection.send((_STOP,))
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - hung-worker fallback
                process.terminate()
                process.join(timeout=1)
        for connection in self._connections:
            connection.close()


def make_pool(
    backend: str,
    n_workers: int,
    handler_factory: Callable[[], Callable[[tuple], Any]],
) -> WorkerPool:
    """Construct the pool for *backend* (``serial`` or ``process``)."""
    if backend == "serial":
        return SerialBackend(n_workers, handler_factory)
    if backend == "process":
        return ProcessBackend(n_workers, handler_factory)
    raise ValueError(f"unknown worker-pool backend {backend!r}")


__all__ = [
    "WorkerError",
    "WorkerPool",
    "SerialBackend",
    "ProcessBackend",
    "make_pool",
]
