"""Worker pools for the sharded mining runtime.

A :class:`WorkerPool` runs one message *handler* per worker under a simple
request/response protocol: every :meth:`~WorkerPool.send` to a worker must
be matched by exactly one :meth:`~WorkerPool.recv` from it, and messages
to one worker are processed in order.  The split into ``send`` / ``recv``
is what buys parallelism with the process backend — the caller sends to
every shard first and only then starts collecting replies, so all workers
compute concurrently.

Two backends implement the protocol:

* :class:`SerialBackend` — handlers run inline in the calling process.
  Same message flow, same wire encoding discipline at the layer above, no
  concurrency: the determinism / debugging backend.
* :class:`ProcessBackend` — one daemon ``multiprocessing`` process per
  worker, connected by a pipe.  Handler exceptions are caught in the
  worker, shipped back as a tagged traceback, and re-raised in the parent
  as :class:`WorkerError`.

Handlers are created *inside* each worker from a picklable zero-argument
factory (a class or function), so process workers never receive parent
state except through messages.

The failure contract distinguishes two layers:

* :class:`WorkerError` — the *handler* raised; the worker itself is fine
  and keeps serving messages.  Raised at :meth:`~WorkerPool.recv` with
  the remote traceback.
* :class:`WorkerDeath` — the *worker* is gone or unresponsive: its
  process exited (``EOFError`` / ``BrokenPipeError`` / a dead
  ``Process``), or no reply arrived within the ``REPRO_WORKER_TIMEOUT``
  deadline (``hung=True``).  A dead worker never deadlocks the parent:
  :meth:`ProcessBackend.recv` polls with a deadline instead of blocking
  bare.  The supervisor in :mod:`repro.runtime.shards` catches
  :class:`WorkerDeath`, respawns via :meth:`~WorkerPool.respawn`, and —
  after retry exhaustion — falls back to :meth:`~WorkerPool.degrade`,
  which replaces the worker with an in-process handler so the run always
  completes.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
import traceback
from abc import ABC, abstractmethod
from collections import deque
from multiprocessing import shared_memory
from typing import Any, Callable

from .faults import SimulatedWorkerDeath
from .wire import BLOB_OP, SHM_OP

#: Tag for replies carrying a worker-side exception.
_ERROR = "__worker_error__"
#: Message asking a worker's main loop to exit.
_STOP = "__stop__"
#: Serial-backend queue marker standing in for a reply that will never
#: arrive because the (simulated) worker died.
_DEATH = "__worker_death__"

#: Environment variable bounding how long the parent waits for a reply.
WORKER_TIMEOUT_ENV = "REPRO_WORKER_TIMEOUT"

#: Default reply deadline for the process backend, in seconds.  Generous —
#: it only has to beat "forever", the pre-supervision behaviour of a
#: blocking ``recv`` on a hung worker.  Set ``REPRO_WORKER_TIMEOUT=0`` to
#: disable, or lower it (chaos CI uses ~10s) to detect hangs quickly.
DEFAULT_WORKER_TIMEOUT = 300.0

#: How often the deadline poll wakes up to check the worker's pulse.
_POLL_INTERVAL = 0.05

#: Environment knob for the shared-memory shipping threshold, in bytes.
SHM_THRESHOLD_ENV = "REPRO_SHM_THRESHOLD"

#: Default threshold above which a flat-buffer blob rides a
#: ``multiprocessing.shared_memory`` segment instead of the pipe.  Below
#: it the pipe wins: a segment costs a shm_open + mmap round trip that
#: only pays for itself once the payload dwarfs the syscalls.
DEFAULT_SHM_THRESHOLD = 1 << 15  # 32 KiB


def resolve_shm_threshold(threshold: int | None = None) -> int | None:
    """Normalise the shm threshold: ``None`` → env → default; ≤0 → off."""
    if threshold is None:
        raw = os.environ.get(SHM_THRESHOLD_ENV, "").strip()
        if not raw:
            return DEFAULT_SHM_THRESHOLD
        try:
            threshold = int(raw)
        except ValueError as error:
            raise ValueError(
                f"{SHM_THRESHOLD_ENV}={raw!r} is not a byte count"
            ) from error
    threshold = int(threshold)
    return None if threshold <= 0 else threshold


def _read_segment(name: str, size: int) -> bytes:
    """Worker-side copy-out of a shared-memory blob.

    The worker only ever *attaches* and *closes* — unlinking is the
    parent's job (exactly-once, tied to reply receipt or supervision),
    so a worker killed mid-read can never strand or double-free a
    segment.  Attaching must not register with the worker's resource
    tracker either (bpo-38119: attach registers like create), or every
    worker spawns a tracker that later warns about — or double-unlinks —
    segments the parent owns.  Python 3.13 has ``track=False`` for this;
    older interpreters need the registration suppressed by hand.
    """
    try:
        segment = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        from multiprocessing import resource_tracker

        register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            segment = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = register
    try:
        return bytes(segment.buf[:size])
    finally:
        segment.close()


class WorkerError(RuntimeError):
    """A handler raised inside a worker; carries the remote traceback."""


class WorkerDeath(RuntimeError):
    """A worker stopped serving: process gone, pipe closed, or deadline hit.

    Distinct from :class:`WorkerError` (handler bug, worker alive): death
    means the reply will never arrive and any shard state the worker held
    is lost.  Carries enough context for the supervisor and for error
    messages: ``worker`` (shard id), ``last_op`` (op of the most recent
    message sent to it), ``reason``, and ``hung`` (``True`` when the
    worker may still be running but missed the reply deadline).
    """

    def __init__(
        self,
        worker: int,
        reason: str,
        last_op: str | None = None,
        hung: bool = False,
    ) -> None:
        op = "none" if last_op is None else repr(last_op)
        super().__init__(
            f"worker {worker} {'hung' if hung else 'died'} "
            f"(last op {op}): {reason}"
        )
        self.worker = worker
        self.reason = reason
        self.last_op = last_op
        self.hung = hung


class WorkerCorruption(WorkerDeath):
    """A worker returned a malformed reply for the op it was sent.

    Treated as a death, not a handler error: a reply that fails shape
    validation means the worker's state can no longer be trusted, so the
    recovery path (respawn + rebuild + replay) is the only safe answer.
    """


def resolve_worker_timeout(
    timeout: float | None = None,
    default: float | None = DEFAULT_WORKER_TIMEOUT,
) -> float | None:
    """Normalise the reply deadline: ``None`` → env → *default*; ≤0 → off."""
    if timeout is None:
        raw = os.environ.get(WORKER_TIMEOUT_ENV, "").strip()
        if not raw:
            return default
        try:
            timeout = float(raw)
        except ValueError as error:
            raise ValueError(
                f"{WORKER_TIMEOUT_ENV}={raw!r} is not a number of seconds"
            ) from error
    timeout = float(timeout)
    return None if timeout <= 0 else timeout


def _raise_if_error(worker: int, reply):
    """Re-raise a tagged error reply as :class:`WorkerError`; pass others.

    Shared by both backends so a handler failure surfaces identically —
    at :meth:`WorkerPool.recv` time, wrapped with the handler-side
    traceback — whether the handler ran inline or in a worker process.
    The deferred raise is what keeps scatter/gather dispatch safe: every
    queued send still gets its matching recv, so one failing shard can
    never leave another shard's reply stranded in a pipe.
    """
    if isinstance(reply, tuple) and len(reply) == 2 and reply[0] == _ERROR:
        raise WorkerError(f"worker {worker} failed:\n{reply[1]}")
    return reply


class WorkerPool(ABC):
    """N workers, each running one handler under send/recv message passing."""

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError(f"a worker pool needs at least one worker, got {n_workers}")
        self.n_workers = n_workers
        self._closed = False

    @abstractmethod
    def send(self, worker: int, message: tuple) -> None:
        """Queue *message* for *worker* (returns immediately)."""

    @abstractmethod
    def recv(self, worker: int) -> Any:
        """The reply to the oldest unanswered :meth:`send` to *worker*."""

    def respawn(self, worker: int) -> None:
        """Replace *worker* with a fresh, empty one; pending replies are lost."""
        raise NotImplementedError

    def degrade(self, worker: int) -> None:
        """Permanently replace *worker* with an in-process inline handler.

        The last resort after respawn retries are exhausted: correctness
        over parallelism.  The slot keeps honouring the send/recv
        protocol, it just executes serially in the caller.
        """
        raise NotImplementedError

    def is_degraded(self, worker: int) -> bool:
        return False

    def call(self, worker: int, message: tuple) -> Any:
        """Send and wait for the reply."""
        self.send(worker, message)
        return self.recv(worker)

    def broadcast(self, message: tuple) -> list[Any]:
        """Send *message* to every worker, then collect every reply."""
        for worker in range(self.n_workers):
            self.send(worker, message)
        return [self.recv(worker) for worker in range(self.n_workers)]

    def close(self) -> None:
        """Shut every worker down; idempotent."""
        self._closed = True

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialBackend(WorkerPool):
    """In-process pool: handlers execute inline at :meth:`send` time.

    Handler exceptions are captured as tagged error replies and re-raised
    at :meth:`recv` as :class:`WorkerError` — the same failure contract
    as the process backend, so callers (and tests) exercise one error
    path whichever backend is under them.

    Injected deaths (:class:`~repro.runtime.faults.SimulatedWorkerDeath`)
    mark the slot dead: the triggering send and every later send to the
    slot queue a death marker instead of running the handler, and the
    matching :meth:`recv` raises :class:`WorkerDeath` — mirroring how a
    dead process answers nothing until it is respawned.
    """

    def __init__(self, n_workers: int, handler_factory: Callable[[], Callable[[tuple], Any]]) -> None:
        super().__init__(n_workers)
        self._factory = handler_factory
        self._handlers = [handler_factory() for _ in range(n_workers)]
        self._replies: list[deque] = [deque() for _ in range(n_workers)]
        self._dead: list[str | None] = [None] * n_workers

    def send(self, worker: int, message: tuple) -> None:
        if self._closed:
            raise RuntimeError("pool is closed")
        op = message[0] if message else None
        if self._dead[worker] is not None:
            self._replies[worker].append((_DEATH, self._dead[worker], op))
            return
        try:
            reply = self._handlers[worker](message)
        except SimulatedWorkerDeath as death:
            self._dead[worker] = str(death) or "simulated worker death"
            self._replies[worker].append((_DEATH, self._dead[worker], op))
            return
        except Exception:
            # Exception, not BaseException: handlers run inline here, so
            # a KeyboardInterrupt/SystemExit must stop the caller now,
            # not resurface later as a shard failure.  (The process
            # worker's loop does catch BaseException — there the worker
            # is isolated and the parent must still get a reply.)
            reply = (_ERROR, traceback.format_exc())
        self._replies[worker].append(reply)

    def recv(self, worker: int) -> Any:
        reply = self._replies[worker].popleft()
        if isinstance(reply, tuple) and len(reply) == 3 and reply[0] == _DEATH:
            raise WorkerDeath(worker, reason=reply[1], last_op=reply[2])
        return _raise_if_error(worker, reply)

    def respawn(self, worker: int) -> None:
        self._handlers[worker] = self._factory()
        self._replies[worker].clear()
        self._dead[worker] = None

    def degrade(self, worker: int) -> None:
        # Already in-process; a degraded serial slot is just a fresh one.
        self.respawn(worker)


def _worker_main(connection, handler_factory) -> None:
    """Entry point of a process worker: build the handler, serve the pipe."""
    handler = handler_factory()
    while True:
        try:
            message = connection.recv()
        except EOFError:
            break
        if message == (_STOP,):
            break
        try:
            if (
                type(message) is tuple
                and len(message) == 4
                and message[0] == SHM_OP
            ):
                # Shared-memory envelope: the pipe carried only the
                # segment name + payload size; rehydrate the blob so the
                # handler sees the same (BLOB_OP, op, blob) message it
                # would have received inline.
                message = (BLOB_OP, message[1], _read_segment(message[2], message[3]))
            reply = handler(message)
        except BaseException:
            reply = (_ERROR, traceback.format_exc())
        try:
            connection.send(reply)
        except BrokenPipeError:
            break
    connection.close()


class ProcessBackend(WorkerPool):
    """One daemon process per worker, pipes for transport.

    ``fork`` is preferred when the platform offers it (no re-import, the
    cheapest start); otherwise the context default (``spawn``) is used, for
    which *handler_factory* must be importable, not a closure.

    :meth:`recv` never blocks bare on the pipe: it polls in short slices
    against an optional deadline (*timeout*, default
    ``REPRO_WORKER_TIMEOUT`` or :data:`DEFAULT_WORKER_TIMEOUT`), checking
    the worker's pulse each wakeup, and raises :class:`WorkerDeath` when
    the process is gone or the deadline expires — a silently killed
    worker costs one poll interval, not a hang.

    Flat-buffer blob messages ``(BLOB_OP, op, blob)`` whose blob reaches
    *shm_threshold* bytes (default ``REPRO_SHM_THRESHOLD`` or
    :data:`DEFAULT_SHM_THRESHOLD`; ≤0 disables) ship through a
    ``multiprocessing.shared_memory`` segment — the pipe then carries
    only ``(SHM_OP, op, segment_name, size)``.  The parent owns the full
    segment lifecycle: create + write at send, unlink at the matching
    recv, and wholesale purge on :meth:`respawn` / :meth:`degrade` /
    :meth:`close`, so supervision after a kill/hang leaves no
    ``/dev/shm`` residue.  Workers only attach, copy out, and close.
    """

    def __init__(
        self,
        n_workers: int,
        handler_factory: Callable[[], Callable[[tuple], Any]],
        start_method: str | None = None,
        timeout: float | None = None,
        shm_threshold: int | None = None,
    ) -> None:
        super().__init__(n_workers)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else None
        self._context = multiprocessing.get_context(start_method)
        self._factory = handler_factory
        self._timeout = resolve_worker_timeout(timeout)
        self._shm_threshold = resolve_shm_threshold(shm_threshold)
        self._connections: list[Any] = [None] * n_workers
        self._processes: list[Any] = [None] * n_workers
        self._last_op: list[str | None] = [None] * n_workers
        self._inline: dict[int, Callable[[tuple], Any]] = {}
        self._inline_replies: dict[int, deque] = {}
        # One entry per in-flight send (None when that send shipped no
        # segment), popped on the matching recv — the send/recv pairing
        # is what makes segment unlink exactly-once.
        self._pending_segments: list[deque] = [deque() for _ in range(n_workers)]
        self._segment_seq = itertools.count()
        for worker in range(n_workers):
            self._spawn(worker)

    def _spawn(self, worker: int) -> None:
        parent_end, worker_end = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(worker_end, self._factory),
            daemon=True,
        )
        process.start()
        worker_end.close()
        self._connections[worker] = parent_end
        self._processes[worker] = process

    @staticmethod
    def _reap(process, connection) -> None:
        """Stop one worker process hard: terminate, then kill, then close."""
        if process.is_alive():
            process.terminate()
            process.join(timeout=2)
        if process.is_alive():  # pragma: no cover - SIGTERM-immune worker
            process.kill()
            process.join(timeout=2)
        try:
            connection.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def worker_pid(self, worker: int) -> int | None:
        """The worker's process id (``None`` for a degraded slot)."""
        if worker in self._inline:
            return None
        return self._processes[worker].pid

    def send(self, worker: int, message: tuple) -> None:
        if self._closed:
            raise RuntimeError("pool is closed")
        op = message[0] if message else None
        if op == BLOB_OP and len(message) >= 2:
            op = message[1]  # death reports should name the inner op
        self._last_op[worker] = op
        if worker in self._inline:
            try:
                reply = self._inline[worker](message)
            except Exception:
                reply = (_ERROR, traceback.format_exc())
            self._inline_replies[worker].append(reply)
            return
        physical = message
        segment = None
        if (
            self._shm_threshold is not None
            and type(message) is tuple
            and len(message) == 3
            and message[0] == BLOB_OP
            and type(message[2]) is bytes
            and len(message[2]) >= self._shm_threshold
        ):
            segment = self._ship_segment(message[2])
            if segment is not None:
                physical = (SHM_OP, message[1], segment.name, len(message[2]))
        try:
            self._connections[worker].send(physical)
        except (BrokenPipeError, OSError):
            # Swallow: callers scatter to every shard before collecting
            # any reply, so the death must surface at recv (where the
            # supervisor handles it), not here mid-scatter.  A shipped
            # segment stays pending and is reclaimed by the supervision
            # path (respawn/degrade/close) that the death triggers.
            pass
        self._pending_segments[worker].append(segment)

    def _ship_segment(self, blob: bytes):
        """Copy *blob* into a fresh named segment; ``None`` = ship inline.

        Creation can fail when ``/dev/shm`` is missing or full — that
        must degrade to pipe transport, never fail the send.
        """
        name = f"repro_shm_{os.getpid()}_{next(self._segment_seq)}"
        try:
            segment = shared_memory.SharedMemory(name=name, create=True, size=len(blob))
        except Exception:
            return None
        segment.buf[: len(blob)] = blob
        return segment

    @staticmethod
    def _release_segment(segment) -> None:
        if segment is None:
            return
        try:
            segment.close()
            segment.unlink()
        except Exception:  # pragma: no cover - already gone
            pass

    def _consume_segment(self, worker: int) -> None:
        """Unlink the segment of the send this recv just answered."""
        pending = self._pending_segments[worker]
        if pending:
            self._release_segment(pending.popleft())

    def _purge_segments(self, worker: int) -> None:
        """Unlink every outstanding segment of a dead/replaced worker."""
        pending = self._pending_segments[worker]
        while pending:
            self._release_segment(pending.popleft())

    def recv(self, worker: int) -> Any:
        if worker in self._inline:
            return _raise_if_error(worker, self._inline_replies[worker].popleft())
        connection = self._connections[worker]
        process = self._processes[worker]
        timeout = self._timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        suspect = False
        while True:
            if connection.poll(_POLL_INTERVAL):
                try:
                    reply = connection.recv()
                except (EOFError, OSError) as error:
                    raise WorkerDeath(
                        worker,
                        reason=f"connection closed ({type(error).__name__}), "
                        f"exitcode {process.exitcode}",
                        last_op=self._last_op[worker],
                    ) from None
                # A reply (even a handler error) means the worker is done
                # with the message, so its segment can be unlinked now.
                # Death paths skip this: respawn/degrade/close purge.
                self._consume_segment(worker)
                return _raise_if_error(worker, reply)
            if not process.is_alive():
                if not suspect:
                    # One grace lap: the reply may have been written just
                    # before the process exited and still sit in the pipe.
                    suspect = True
                    continue
                raise WorkerDeath(
                    worker,
                    reason=f"worker process died (exitcode {process.exitcode})",
                    last_op=self._last_op[worker],
                )
            if deadline is not None and time.monotonic() >= deadline:
                raise WorkerDeath(
                    worker,
                    reason=f"no reply within {timeout:g}s",
                    last_op=self._last_op[worker],
                    hung=True,
                )

    def respawn(self, worker: int) -> None:
        if worker in self._inline:
            self._inline[worker] = self._factory()
            self._inline_replies[worker].clear()
            return
        # Closing the old pipe discards any stale buffered replies, so a
        # respawned slot can never answer a new send with an old reply.
        self._reap(self._processes[worker], self._connections[worker])
        # Purge only after the reap: a worker that is merely hung could
        # otherwise still be mid-attach on a segment we unlink under it.
        self._purge_segments(worker)
        self._spawn(worker)
        self._last_op[worker] = None

    def degrade(self, worker: int) -> None:
        if worker in self._inline:
            self.respawn(worker)
            return
        self._reap(self._processes[worker], self._connections[worker])
        self._purge_segments(worker)
        self._inline[worker] = self._factory()
        self._inline_replies[worker] = deque()

    def is_degraded(self, worker: int) -> bool:
        return worker in self._inline

    def close(self) -> None:
        if self._closed:
            return
        super().close()
        for worker, connection in enumerate(self._connections):
            if worker in self._inline:
                continue
            try:
                connection.send((_STOP,))
            except (BrokenPipeError, OSError):
                pass
        for worker, process in enumerate(self._processes):
            if worker in self._inline:
                continue
            process.join(timeout=5)
            if process.is_alive():
                # Hung-worker fallback, escalating: SIGTERM first, SIGKILL
                # for workers that ignore it — close() must always return.
                process.terminate()
                process.join(timeout=2)
            if process.is_alive():
                process.kill()
                process.join(timeout=2)
        for worker, connection in enumerate(self._connections):
            if worker in self._inline:
                continue
            connection.close()
        for worker in range(self.n_workers):
            self._purge_segments(worker)
        self._inline.clear()
        self._inline_replies.clear()


def make_pool(
    backend: str,
    n_workers: int,
    handler_factory: Callable[[], Callable[[tuple], Any]],
    worker_timeout: float | None = None,
) -> WorkerPool:
    """Construct the pool for *backend* (``serial`` or ``process``)."""
    if backend == "serial":
        return SerialBackend(n_workers, handler_factory)
    if backend == "process":
        return ProcessBackend(n_workers, handler_factory, timeout=worker_timeout)
    raise ValueError(f"unknown worker-pool backend {backend!r}")


__all__ = [
    "DEFAULT_SHM_THRESHOLD",
    "DEFAULT_WORKER_TIMEOUT",
    "SHM_THRESHOLD_ENV",
    "WORKER_TIMEOUT_ENV",
    "resolve_shm_threshold",
    "WorkerCorruption",
    "WorkerDeath",
    "WorkerError",
    "WorkerPool",
    "SerialBackend",
    "ProcessBackend",
    "make_pool",
    "resolve_worker_timeout",
]
