"""Sharded support counting: K engine shards behind one runtime facade.

A :class:`ShardedEngine` partitions registered transactions round-robin
across K shards.  Each shard owns the full matching state for its slice —
a :class:`~repro.graphs.compact.LabelTable` replica, the per-transaction
:class:`~repro.graphs.index.GraphIndex` set, and its own
``(pattern canonical code, tid)`` verdict LRU — so shards never share
mutable state and support counts merge by disjoint union.

Transactions and patterns travel as :class:`CompactGraph` wire tuples:
pure-integer payloads against a label-table replica the parent keeps in
sync by shipping append-only deltas.  Workers therefore never re-intern a
label and never rebuild string keys; with the process backend the pickles
are tuples of small ints.

Level-wise mining goes further through a **mining session**
(:class:`ShardedSession`, opened with :meth:`ShardedEngine.open_session`):
each shard keeps a resident pattern store keyed by candidate uid, so a
level-(k+1) candidate — its parent plus one edge — ships as a small delta
token and is reconstructed shard-side from the stored parent
(:meth:`MatchEngine.extend_session_pattern`).  Full wire tuples are sent
only for roots and store misses; shard-initiated (capacity) evictions are
piggybacked on level replies so the parent's residency model stays exact.

Dispatch is scatter/gather throughout: every per-level message is sent to
every shard before any reply is received, so shard compute genuinely
overlaps under the process backend, and replies are always fully drained
before a worker error is re-raised — a failing shard can never leave the
pipes desynchronised.

The shard side is :class:`ShardWorker`, a picklable message handler that
runs identically under both worker-pool backends (inline for ``serial``,
in a daemon process for ``process``) — the backend choice can change
wall-clock, never output.

Worker failure is survivable: when a gather hits a
:class:`~repro.runtime.pool.WorkerDeath` (process gone, reply deadline
missed, or a malformed reply), the engine's supervisor respawns the
worker with bounded retries and exponential backoff, deterministically
rebuilds the shard — full label-table snapshot, the retained transaction
wires in original order, the released set, then tracing and sticky fault
clauses — replays the in-flight message for that shard only, and after
retry exhaustion degrades the slot to in-process serial execution.
Because shard tasks are pure functions of (table, transactions, message),
the replay is invisible in mining output: golden digests are
byte-identical with and without injected faults.  Session pattern stores
start empty on the rebuilt worker; the planner's residency model is reset
through the engine's shard-reset listeners and repopulates lazily via the
existing store-miss full-wire resend path.
"""

from __future__ import annotations

import functools
import os
import time
from collections import OrderedDict
from typing import Any, Callable, Iterable, Sequence

from repro.graphs.compact import CompactGraph, LabelTable
from repro.graphs.engine import EmbeddingTask, MatchEngine, resolve_kernel
from repro.graphs.labeled_graph import LabeledGraph
from repro.obs.tracer import NULL_TRACER, SpanRecord, Tracer, get_tracer
from repro.runtime.base import (
    DelegatingSession,
    LevelRequest,
    MiningRuntime,
    MiningSession,
    merge_stats,
    resolve_backend,
)
from repro.runtime.bitsets import bits_of, bits_to_buffer, tids_from_buffer, tids_of
from repro.runtime.faults import FaultPlan, compile_injector, resolve_faults
from repro.runtime.planner import (
    BatchSupportPlanner,
    PlacementPolicy,
    resolve_placement,
    wire_cost,
)
from repro.runtime.pool import WorkerCorruption, WorkerDeath, WorkerError, make_pool
from repro.runtime.wire import BLOB_OP, decode_message, encode_message, resolve_wire

#: Session protocols understood by :class:`ShardedEngine`.
SESSION_PROTOCOLS = ("delta", "full")

#: Reply-wrapper tag a tracing :class:`ShardWorker` uses to piggyback its
#: finished span and metric buffers on the normal reply — no extra round
#: trips, and the payload inside is byte-identical to the untraced reply.
_OBS_REPLY = "__obs__"

#: Worker span names that time per-level messages; the parent stamps
#: these with the mining level when it drains them (other worker spans —
#: add/release/stats — are level-free and left unstamped).
_LEVELED_WORKER_SPANS = frozenset({"shard.slevel", "shard.level", "shard.batch"})

#: Default bound on resident patterns per shard store.  Mining keeps at
#: most ~two levels' candidates alive (the miner evicts each level as
#: soon as its consumer level is done), so this is a memory backstop for
#: adversarial levels, not a tuning knob.
DEFAULT_STORE_CAPACITY = 1 << 16

#: Environment knobs for the recovery supervisor.
RECOVERY_RETRIES_ENV = "REPRO_RECOVERY_RETRIES"
RECOVERY_BACKOFF_ENV = "REPRO_RECOVERY_BACKOFF"

#: Respawn attempts before a dead shard degrades to in-process execution.
DEFAULT_RECOVERY_RETRIES = 2
#: Base delay of the exponential backoff between respawn attempts.
DEFAULT_RECOVERY_BACKOFF = 0.1


@functools.lru_cache(maxsize=None)
def _blob_envelope_cost(op: str) -> int:
    """Pickled size of a ``(BLOB_OP, op, blob)`` envelope minus the blob.

    Added to each blob's length so buffer-wire accounting covers the
    whole physical message, not just the payload — keeping the
    pickle-vs-buffer byte comparison honest.
    """
    return wire_cost((BLOB_OP, op, b""))


def _resolve_env_number(value, env: str, default, cast):
    if value is not None:
        return cast(value)
    raw = os.environ.get(env, "").strip()
    if not raw:
        return default
    try:
        return cast(raw)
    except ValueError as error:
        raise ValueError(f"{env}={raw!r} is not a valid number") from error


#: Expected reply type per shard op; ops not listed ack with ``None``.
#: The parent validates every gathered reply against this table so a
#: corrupted (or truncated) reply becomes a typed ``WorkerCorruption``
#: feeding the recovery path, never a downstream ``TypeError`` operating
#: on junk.
_REPLY_SHAPES: dict[str, type] = {
    "add": list,
    "batch": list,
    "level": list,
    "stats": dict,
}


def _reply_shape_ok(op: str, reply) -> bool:
    if op == "slevel":
        return isinstance(reply, tuple) and len(reply) == 3
    expected = _REPLY_SHAPES.get(op)
    if expected is None:
        return reply is None
    return isinstance(reply, expected)


class ShardWorker:
    """One shard's state and message handler.

    Messages (each answered by exactly one reply):

    ``("labels", labels)``
        Append the parent table's delta to the replica; ack with ``None``.
    ``("add", wires)``
        Register transactions from wire tuples; reply with local tids.
    ``("release", local_tids)``
        Drop transaction references; ack with ``None``.
    ``("batch", wires, tid_lists, keys)``
        Batched support for the patterns against local tids (``keys``
        carries precomputed verdict-cache keys); reply with a sorted
        local tid list per pattern.
    ``("level", wires, tid_lists, keys, uids, parent_uids, extensions, bounds)``
        Incremental (embedding-store) support for one mining level:
        parallel lists per pattern, ``bounds`` being shard-local
        early-abort thresholds.  Anchors stay in this shard's engine —
        only the small uid/extension tokens ever cross the pipe.  Reply
        with a sorted local tid list per pattern.
    ``("slevel", evictions, payloads, uids, parent_uids, extensions, bounds)``
        One *session* level against the resident pattern store.
        ``evictions`` (parent-retired uids, piggybacked here instead of
        costing their own round trip) are applied first — pattern store
        and anchors both.  Each ``payloads[i]`` is a full wire
        ``("w", wire, tid_buffer)`` or a delta
        ``("d", edge_label_id, new_label_id, mask_buffer)`` — scan sets
        as flat bitset byte buffers — reconstructed from
        the stored parent; every pattern is filed in the store under its
        uid, and its resulting hit list is remembered so next level's
        delta masks can be decoded against it.  Reply with
        ``(hit lists, capacity-evicted uids, store hits)`` — the store
        hits being this shard's own count of resident-parent
        reconstructions, the reply-side half of the parent's
        ``patterns_delta`` cross-check.
    ``("sevict", uids)``
        Retire *uids* from the pattern store *and* the embedding store;
        ack with ``None`` (the session's close-time flush).
    ``("drop_anchors", uids)``
        Retire the embedding-store entries of *uids*; ack with ``None``.
    ``("stats",)``
        Reply with the shard engine's counter snapshot merged with this
        worker's session-protocol counters.
    ``("trace", shard, wall_anchor)``
        Start this worker's tracer (see :mod:`repro.obs`): *shard* names
        the timeline (``shard0``...), *wall_anchor* aligns the worker
        clock to the parent's.  Ack with ``None``.  From then on every
        message is timed by a span and every reply is wrapped as
        ``("__obs__", reply, spans, counter_delta)`` — the parent
        unwraps in ``_gather``, so tracing changes reply framing, never
        reply content.
    ``("faults", shard, spec, inline)``
        Arm (or, with a falsy *spec*, disarm) this worker's fault
        injector (see :mod:`repro.runtime.faults`); ack with ``None``.
        From then on every non-control message runs through the
        injector's hooks: ``kill`` / ``hang`` clauses fire before the
        handler, ``corrupt-reply`` clauses replace the outgoing reply
        (observability wrapping included, so corruption also exercises
        the parent's unwrap validation).  Control messages (``trace``,
        ``faults`` itself) are exempt — the harness must always be able
        to reach a worker it is about to break.
    """

    def __init__(
        self,
        store_capacity: int = DEFAULT_STORE_CAPACITY,
        kernel: str | None = None,
    ) -> None:
        if store_capacity < 1:
            raise ValueError(f"store_capacity must be at least 1, got {store_capacity}")
        self.table = LabelTable()
        # The parent resolves the kernel once and passes it explicitly,
        # so every shard runs the same backend whatever the worker
        # process's environment says.
        self.engine = MatchEngine(self.table, kernel=kernel)
        self.store_capacity = store_capacity
        #: Per-uid shard-local hit lists (ascending), kept alongside the
        #: engine's pattern store: delta masks index into the *parent's*
        #: hit list, so it must survive until the parent is evicted.
        self._session_hits: dict[object, list[int]] = {}
        #: Store insertion order (oldest first) for capacity eviction.
        self._session_order: "OrderedDict[object, None]" = OrderedDict()
        self.counters = {
            "patterns_shipped_full": 0,
            "patterns_shipped_delta": 0,
            "session_store_evictions": 0,
        }
        #: This shard's tracer, installed by a ``("trace", ...)`` message;
        #: ``None`` (the default) keeps the untraced fast path — one
        #: attribute check per message, nothing wrapped, nothing shipped.
        self.tracer: Tracer | None = None
        #: Counter snapshot already shipped to the parent; the next obs
        #: reply ships only the delta past this point.
        self._obs_shipped: dict[str, int] = {}
        #: This shard's fault injector, installed by a ``("faults", ...)``
        #: message; ``None`` (the default) keeps the fault-free fast path
        #: — one attribute check per message and nothing else.
        self.faults = None

    # ------------------------------------------------------------------
    # Session store bookkeeping
    # ------------------------------------------------------------------
    def _store_drop(self, uids: Iterable[object]) -> None:
        """Forget store entries (pattern, hits, order); anchors untouched."""
        uid_list = list(uids)
        self.engine.drop_session_patterns(uid_list)
        for uid in uid_list:
            self._session_hits.pop(uid, None)
            self._session_order.pop(uid, None)

    def _session_level(self, message: tuple):
        _, evictions, payloads, uids, parent_uids, extensions, bounds = message
        if evictions:
            # Parent-retired uids: gone from the store *and* the anchor
            # store, exactly as a drop_anchors broadcast would have done.
            self._store_drop(evictions)
            self.engine.drop_anchors(evictions)
        tasks: list[EmbeddingTask] = []
        counters = self.counters
        store_hits = 0
        for payload, uid, parent_uid, extension, bound in zip(
            payloads, uids, parent_uids, extensions, bounds
        ):
            if payload[0] == "w":
                _, wire, tid_buffer = payload
                compact = CompactGraph.from_wire(wire, self.table)
                index = self.engine.register_session_pattern(uid, compact)
                tids = tids_from_buffer(tid_buffer)
                counters["patterns_shipped_full"] += 1
            elif payload[0] == "d":
                _, edge_label_id, new_label_id, mask = payload
                index = self.engine.extend_session_pattern(
                    uid, parent_uid, extension, edge_label_id, new_label_id
                )
                parent_hits = self._session_hits.get(parent_uid)
                if parent_hits is None:
                    raise KeyError(
                        f"no stored hit list for parent {parent_uid!r} "
                        f"while decoding the scan mask of {uid!r}"
                    )
                tids = [parent_hits[offset] for offset in tids_from_buffer(mask)]
                counters["patterns_shipped_delta"] += 1
                store_hits += 1
            else:
                raise ValueError(f"unknown session payload tag {payload[0]!r}")
            self._session_order[uid] = None
            # No verdict-cache key on purpose: session tids die with the
            # run and no (pattern, tid) pair repeats inside one, so the
            # canonical-code strings would be dead weight on the wire.
            tasks.append(
                EmbeddingTask(
                    pattern=index,
                    tids=tids,
                    key=False,
                    uid=uid,
                    parent_uid=parent_uid,
                    extension=extension,
                    abort_below=bound,
                )
            )
        results = self.engine.support_with_embeddings(tasks)
        for uid, hits in zip(uids, results):
            self._session_hits[uid] = hits
        # Capacity pressure: evict oldest entries, but never this level's
        # (they are next level's delta parents).  Evicted uids keep their
        # anchors — anchor lifecycle belongs to the miner — and are
        # reported so the parent resends those patterns in full on a miss.
        current = set(uids)
        evicted: list[object] = []
        while len(self._session_order) > self.store_capacity:
            oldest = next(iter(self._session_order))
            if oldest in current:
                break
            evicted.append(oldest)
            self._store_drop([oldest])
        if evicted:
            counters["session_store_evictions"] += len(evicted)
        return results, evicted, store_hits

    def _enable_tracing(self, shard: int, wall_anchor: float) -> None:
        """Start this shard's tracer on a parent-aligned clock.

        The parent ships its own wall-clock reading with the enable
        message; anchoring ``perf_counter`` to it puts every worker span
        on (approximately) the parent's time axis, so the merged trace
        renders as parallel swimlanes without post-hoc skew correction.
        The enable message is the offset's upper bound on error: one
        pipe latency, microseconds inline and well under a millisecond
        across processes.
        """
        offset = wall_anchor - time.perf_counter()
        self.tracer = Tracer(
            worker=f"shard{shard}",
            clock=lambda: time.perf_counter() + offset,
        )
        # Everything counted before tracing began predates the trace;
        # baseline it away so shipped deltas cover the traced window only.
        self._obs_shipped = {**self.engine.stats_snapshot(), **self.counters}

    def _span_attrs(self, op: str, message: tuple) -> dict:
        """Cheap size attributes for the per-message worker span."""
        if op == "slevel":
            return {"patterns": len(message[2]), "evictions": len(message[1])}
        if op in ("level", "batch", "add"):
            return {"patterns": len(message[1])}
        return {}

    def __call__(self, message: tuple):
        if message[0] == BLOB_OP:
            # Flat-buffer envelope: rehydrate the logical message before
            # any hook runs, so fault op/level filters, span names, and
            # reply shapes all see the same ops as the pickle wire.
            message = decode_message(message[2])
        tracer = self.tracer
        op = message[0]
        if op == "trace":
            self._enable_tracing(message[1], message[2])
            return None
        if op == "faults":
            _, shard, spec, inline = message
            self.faults = compile_injector(spec, shard, inline)
            return None
        faults = self.faults
        if faults is not None:
            faults.on_message(op)
        if tracer is None:
            reply = self._handle(message, op)
            if faults is not None:
                reply = faults.on_reply(op, reply)
            return reply
        with tracer.span(f"shard.{op}", **self._span_attrs(op, message)):
            reply = self._handle(message, op)
        # Piggyback the finished spans and the counter delta on the reply
        # the parent is already waiting for; the wrapped payload is the
        # untraced reply, byte for byte.
        snapshot = {**self.engine.stats_snapshot(), **self.counters}
        shipped = self._obs_shipped
        delta = {
            key: value - shipped.get(key, 0)
            for key, value in snapshot.items()
            if value != shipped.get(key, 0)
        }
        self._obs_shipped = snapshot
        reply = (
            _OBS_REPLY,
            reply,
            [record.to_wire() for record in tracer.take_spans()],
            delta,
        )
        # Corruption applies to what actually crosses the pipe — the
        # wrapped frame — so the parent's unwrap sees the junk too.
        if faults is not None:
            reply = faults.on_reply(op, reply)
        return reply

    def _handle(self, message: tuple, op: str):
        if op == "labels":
            self.table.extend(message[1])
            return None
        if op == "add":
            compacts = [CompactGraph.from_wire(wire, self.table) for wire in message[1]]
            return self.engine.add_compact_transactions(compacts)
        if op == "release":
            self.engine.release_transactions(message[1])
            return None
        if op == "batch":
            patterns = [CompactGraph.from_wire(wire, self.table) for wire in message[1]]
            self.counters["patterns_shipped_full"] += len(patterns)
            supports = self.engine.batch_support(patterns, message[2], message[3])
            return [sorted(tids) for tids in supports]
        if op == "level":
            _, wires, tid_lists, keys, uids, parent_uids, extensions, bounds = message
            self.counters["patterns_shipped_full"] += len(wires)
            tasks = [
                EmbeddingTask(
                    pattern=CompactGraph.from_wire(wire, self.table),
                    tids=tids,
                    key=key,
                    uid=uid,
                    parent_uid=parent_uid,
                    extension=extension,
                    abort_below=bound,
                )
                for wire, tids, key, uid, parent_uid, extension, bound in zip(
                    wires, tid_lists, keys, uids, parent_uids, extensions, bounds
                )
            ]
            return self.engine.support_with_embeddings(tasks)
        if op == "slevel":
            return self._session_level(message)
        if op == "sevict":
            self._store_drop(message[1])
            self.engine.drop_anchors(message[1])
            return None
        if op == "drop_anchors":
            self.engine.drop_anchors(message[1])
            return None
        if op == "stats":
            return {**self.engine.stats_snapshot(), **self.counters}
        raise ValueError(f"unknown shard message {op!r}")


class ShardedEngine(MiningRuntime):
    """K-shard mining runtime with batched per-level evaluation.

    Parameters
    ----------
    shards:
        Number of shards / workers (K >= 1; prefer >= 2, otherwise use
        :class:`~repro.runtime.base.SerialRuntime`).
    backend:
        ``"process"`` (default, real parallelism via ``multiprocessing``)
        or ``"serial"`` (same code path inline — determinism / debugging).
        ``None`` consults ``REPRO_BACKEND``.
    session_protocol:
        ``"delta"`` (default) gives :meth:`open_session` callers the
        stateful :class:`ShardedSession` — resident shard stores, delta
        shipping, piggybacked evictions.  ``"full"`` falls back to a
        stateless :class:`~repro.runtime.base.DelegatingSession` over
        :meth:`batch_support_level` (every level re-ships every pattern
        in full — the pre-session wire protocol, kept as the benchmark
        baseline and an A/B escape hatch).  Mining output is identical
        either way.
    session_store_capacity:
        Bound on resident patterns per shard store; overflowing entries
        are evicted oldest-first and resent in full on a later miss.
    faults:
        A :class:`~repro.runtime.faults.FaultPlan`, a spec string, or
        ``None`` to consult ``REPRO_FAULTS``.  When active, the plan is
        armed on every worker at construction and recovery is exercised
        for real; when absent (the default) nothing fault-related runs.
    worker_timeout:
        Reply deadline in seconds for the process backend (``None``
        consults ``REPRO_WORKER_TIMEOUT``, defaulting to
        :data:`~repro.runtime.pool.DEFAULT_WORKER_TIMEOUT`; ≤0 disables).
        The serial backend detects deaths synchronously and ignores this.
    recovery_retries:
        Respawn attempts per failure before the shard degrades to
        in-process execution (``None`` consults
        ``REPRO_RECOVERY_RETRIES``, default 2).
    recovery_backoff:
        Base seconds of the exponential backoff between respawn attempts
        (``None`` consults ``REPRO_RECOVERY_BACKOFF``, default 0.1).
    wire:
        Wire format for shard messages (``None`` consults ``REPRO_WIRE``,
        default ``"buffer"``).  ``"buffer"`` encodes the data-plane
        messages as flat buffers — varint-packed graphs, delta-coded tid
        lists — which the process backend may further ship through
        shared memory; ``"pickle"`` sends the logical tuples as-is and
        is kept as the differential oracle.  Workers rehydrate blobs
        before any fault/trace hook runs, so mining output, fault
        filtering, and telemetry semantics are identical under both.
    placement:
        Tid placement policy (``None`` consults ``REPRO_PLACEMENT``,
        default ``"weighted"``): support-weighted least-loaded placement
        by transaction edge count, or ``"roundrobin"`` for the legacy
        static layout (the A/B baseline for the skew benchmarks).
    """

    def __init__(
        self,
        shards: int = 2,
        backend: str | None = None,
        session_protocol: str = "delta",
        session_store_capacity: int = DEFAULT_STORE_CAPACITY,
        kernel: str | None = None,
        faults: "FaultPlan | str | None" = None,
        worker_timeout: float | None = None,
        recovery_retries: int | None = None,
        recovery_backoff: float | None = None,
        wire: str | None = None,
        placement: str | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if session_protocol not in SESSION_PROTOCOLS:
            raise ValueError(
                f"session_protocol must be one of {SESSION_PROTOCOLS}, "
                f"got {session_protocol!r}"
            )
        self.n_shards = shards
        self.backend = resolve_backend(backend)
        self.session_protocol = session_protocol
        #: Match-kernel backend of every shard engine; resolved here
        #: (env fallback included) so process workers inherit the
        #: parent's choice rather than re-reading their own environment.
        self.kernel = resolve_kernel(kernel)
        #: Wire format for shard messages: ``"buffer"`` (default) encodes
        #: data-plane messages as flat buffers (see
        #: :mod:`repro.runtime.wire`), ``"pickle"`` ships the logical
        #: tuples directly — the differential oracle.  Resolved here
        #: (``$REPRO_WIRE`` fallback included) for the same reason as
        #: the kernel knob.
        self.wire = resolve_wire(wire)
        self.table = LabelTable()
        self.planner = BatchSupportPlanner(shards)
        self._placement = PlacementPolicy(shards, resolve_placement(placement))
        self._wire_bytes = 0
        self._level_patterns_posted = 0
        self._last_level_scan_units: list[int] = []
        self._pool = make_pool(
            self.backend,
            shards,
            functools.partial(
                ShardWorker,
                store_capacity=session_store_capacity,
                kernel=self.kernel,
            ),
            worker_timeout=worker_timeout,
        )
        self._synced = [0] * shards
        self._local_to_global: list[list[int]] = [[] for _ in range(shards)]
        self._home: dict[int, tuple[int, int]] = {}
        self._released: set[int] = set()
        self._next_global = 0
        self._closed = False
        #: Recovery state.  ``_shard_wires`` retains each shard's
        #: acknowledged transaction wires in registration order (released
        #: slots collapse to a shared tombstone wire that preserves
        #: local-tid numbering while freeing the graph payload), and
        #: ``_shard_released`` the acknowledged released local tids —
        #: together they are exactly the state a fresh worker needs to
        #: become an indistinguishable replica.
        self.faults = resolve_faults(faults)
        self._recovery_retries = _resolve_env_number(
            recovery_retries, RECOVERY_RETRIES_ENV, DEFAULT_RECOVERY_RETRIES, int
        )
        self._recovery_backoff = _resolve_env_number(
            recovery_backoff, RECOVERY_BACKOFF_ENV, DEFAULT_RECOVERY_BACKOFF, float
        )
        self.recovery = {
            "worker_restarts": 0,
            "level_replays": 0,
            "worker_degradations": 0,
        }
        self._shard_wires: list[list[tuple]] = [[] for _ in range(shards)]
        self._shard_released: list[set[int]] = [set() for _ in range(shards)]
        self._tombstone = None
        self._round_message: dict[int, tuple] = {}
        self._round_replay: "Callable[[int], tuple | None] | None" = None
        self._reset_listeners: list[Callable[[int], None]] = []
        self._degraded: set[int] = set()
        #: Observability state: the tracer worker spans and shard metric
        #: deltas merge into, and the buffer of worker spans gathered but
        #: not yet level-stamped (see :meth:`drain_worker_spans`).
        self._tracer = NULL_TRACER
        self._worker_spans: list[SpanRecord] = []
        active = get_tracer()
        if active.enabled:
            self.enable_tracing(active)
        if self.faults is not None:
            self._arm_faults(self.faults)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def enable_tracing(self, tracer) -> None:
        """Start per-shard tracing, merging worker output into *tracer*.

        Each shard gets its own worker-side :class:`~repro.obs.tracer.Tracer`
        (named ``shard0``... and clock-aligned to the parent); finished
        spans and engine/session counter deltas ship piggybacked on the
        replies the parent already gathers.  Called automatically at
        construction when a process-global tracer is active.
        """
        self._tracer = tracer
        anchor = time.time()
        pending = self._scatter(
            [(shard, ("trace", shard, anchor)) for shard in range(self.n_shards)]
        )
        self._gather(pending)

    def _absorb_worker_obs(self, shard: int, spans, delta) -> None:
        self._worker_spans.extend(SpanRecord.from_wire(wire) for wire in spans)
        if delta:
            self._tracer.metrics.absorb(delta, shard=str(shard))

    def drain_worker_spans(self, level: int | None = None) -> None:
        """Forward gathered worker spans to the tracer, stamping *level*.

        Workers cannot know which mining level a message served, but the
        caller that just gathered a level does — sessions (and the batch
        miner path) call this right after each level so per-level shard
        timings line up in the merged trace.  Leveled span names only;
        add/stats/release spans pass through unstamped.
        """
        spans = self._worker_spans
        if not spans:
            return
        self._worker_spans = []
        if level is not None:
            for record in spans:
                if record.name in _LEVELED_WORKER_SPANS:
                    record.attrs.setdefault("level", level)
        self._tracer.extend(spans)

    # ------------------------------------------------------------------
    # Fault injection & recovery
    # ------------------------------------------------------------------
    def _arm_faults(self, plan: FaultPlan, shards: Iterable[int] | None = None) -> None:
        """Ship *plan* to workers; they compile their own injectors."""
        inline = self.backend == "serial"
        spec = plan.to_spec()
        targets = range(self.n_shards) if shards is None else shards
        messages = [
            (shard, ("faults", shard, spec, inline))
            for shard in targets
            if shard not in self._degraded
        ]
        if messages:
            self._gather(self._scatter(messages))

    def add_reset_listener(self, listener: Callable[[int], None]) -> None:
        """Register a callback invoked with the shard id after a rebuild.

        Sessions use this to drop their residency model for the shard —
        the rebuilt worker's pattern store is empty, so every resident
        uid must be demoted back to ship-in-full.
        """
        self._reset_listeners.append(listener)

    def remove_reset_listener(self, listener: Callable[[int], None]) -> None:
        try:
            self._reset_listeners.remove(listener)
        except ValueError:
            pass

    @property
    def recovery_counts(self) -> dict[str, int]:
        """Snapshot of the supervisor's counters (all zero when healthy)."""
        return dict(self.recovery)

    def _tombstone_wire(self) -> tuple:
        """The shared placeholder wire standing in for a released slot.

        Released transactions must keep their local-tid slot (rebuild
        re-adds wires in order, so slot i must stay slot i) but their
        graph payload can be dropped — important for streaming runs,
        where the released prefix dwarfs the live window.  A one-vertex
        graph over a dedicated tombstone label is the smallest wire that
        round-trips; rebuild releases the slots right after re-adding.
        """
        if self._tombstone is None:
            label_id = self.table.intern("\x00repro:released\x00")
            # Tuple labels keep the tombstone inside the flat-buffer
            # codec's type universe so rebuild re-adds stay off pickle.
            self._tombstone = ("\x00released\x00", (label_id,), [], ("t",))
        return self._tombstone

    def _receive(self, shard: int, op: str):
        """One recv + obs unwrap + shape validation for *shard*'s *op*."""
        reply = self._pool.recv(shard)
        if type(reply) is tuple and len(reply) == 4 and reply[0] == _OBS_REPLY:
            _, reply, spans, delta = reply
            self._absorb_worker_obs(shard, spans, delta)
        if not _reply_shape_ok(op, reply):
            raise WorkerCorruption(
                shard,
                reason=f"malformed reply {type(reply).__name__!s} for op {op!r}",
                last_op=op,
            )
        return reply

    def _rebuild_shard(self, shard: int, rearm: bool) -> None:
        """Make a fresh worker an exact replica of the lost shard.

        Determinism rests on shard state being a pure function of the
        message history: full label snapshot, the retained wires in
        registration order (identical local tids fall out), the released
        set.  Session pattern stores are *not* rebuilt — the reset
        listeners clear the parent's residency model instead, and the
        store repopulates lazily through the full-wire resend path.
        """
        self._synced[shard] = 0
        if self._send_sync(shard):
            self._receive(shard, "labels")
        wires = self._shard_wires[shard]
        if wires:
            self._post(shard, ("add", wires))
            locals_ = self._receive(shard, "add")
            if list(locals_) != list(range(len(wires))):
                raise WorkerCorruption(
                    shard,
                    reason="rebuild assigned unexpected local tids",
                    last_op="add",
                )
        released = self._shard_released[shard]
        if released:
            self._post(shard, ("release", sorted(released)))
            self._receive(shard, "release")
        if self._tracer is not NULL_TRACER:
            self._post(shard, ("trace", shard, time.time()))
            self._receive(shard, "trace")
        if rearm and self.faults is not None:
            sticky = self.faults.sticky_only()
            if sticky:
                self._post(
                    shard, ("faults", shard, sticky.to_spec(), self.backend == "serial")
                )
                self._receive(shard, "faults")

    def _rebuild_and_replay(self, shard: int, rearm: bool):
        self._rebuild_shard(shard, rearm)
        for listener in list(self._reset_listeners):
            listener(shard)
        message = self._round_message.get(shard)
        if message is None:
            # Death outside any round (nothing in flight): rebuilt, done.
            return None
        if self._round_replay is not None:
            replacement = self._round_replay(shard)
            if replacement is not None:
                message = replacement
        self._post(shard, message)
        return self._receive(shard, message[0])

    def _recover_shard(self, shard: int, death: WorkerDeath):
        """Respawn → rebuild → replay with bounded retries, degrade last.

        Returns the replayed reply for the in-flight message (or ``None``
        when nothing was in flight).  Raises only when even in-process
        execution fails — at that point the failure is a handler bug and
        surfaces as the usual :class:`WorkerError`.
        """
        op = self._round_message.get(shard, (None,))[0]
        started = time.perf_counter()
        tracer = self._tracer
        span = tracer.span(
            "runtime.recovery", shard=shard, op=op or "idle", reason=death.reason
        )
        attempt = 0
        degraded = False
        while True:
            if attempt < self._recovery_retries:
                if attempt:
                    time.sleep(self._recovery_backoff * (2 ** (attempt - 1)))
                self._pool.respawn(shard)
                self.recovery["worker_restarts"] += 1
                tracer.metrics.counter("worker_restarts", shard=str(shard))
            else:
                # Retries exhausted: correctness over parallelism.  The
                # slot becomes an in-process handler (which cannot die)
                # and sticky faults are never re-armed on it.
                self._pool.degrade(shard)
                self._degraded.add(shard)
                self.recovery["worker_degradations"] += 1
                tracer.metrics.counter("worker_degradations", shard=str(shard))
                degraded = True
            attempt += 1
            try:
                reply = self._rebuild_and_replay(shard, rearm=not degraded)
            except WorkerDeath as next_death:
                if degraded:  # pragma: no cover - inline slots cannot die
                    span.finish(attempts=attempt, outcome="failed")
                    raise next_death
                continue
            break
        if op in ("slevel", "level", "batch"):
            self.recovery["level_replays"] += 1
            tracer.metrics.counter("level_replays", shard=str(shard))
        elapsed = time.perf_counter() - started
        tracer.metrics.histogram("recovery_seconds", elapsed, shard=str(shard))
        span.finish(attempts=attempt, degraded=degraded)
        return reply

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def locate(self, tid: int) -> tuple[int, int]:
        """The ``(shard, local tid)`` home of global tid *tid*."""
        if tid in self._released:
            raise KeyError(f"transaction {tid} has been released from this runtime")
        try:
            return self._home[tid]
        except KeyError:
            raise KeyError(f"unknown transaction id {tid}") from None

    def to_global(self, shard: int, local: int) -> int:
        """The global tid of *local* on *shard*."""
        return self._local_to_global[shard][local]

    @property
    def n_transactions(self) -> int:
        """Number of global tid slots handed out (including released ones)."""
        return self._next_global

    @property
    def wire_bytes_shipped(self) -> int:
        """Measured bytes of every message posted to the shards so far.

        Accounted at post time with one ruler across pool backends: the
        flat-buffer blob length under ``wire="buffer"``, the measured
        pickle length (:func:`~repro.runtime.planner.wire_cost`)
        otherwise.
        """
        return self._wire_bytes

    @property
    def placement_loads(self) -> list[int]:
        """Cumulative placed scan weight per shard (placement balance).

        The running totals the weighted placement policy levels —
        sessions surface their max/min as the ``placement_weight_max`` /
        ``placement_weight_min`` telemetry, making every rebalancing
        decision's outcome visible in the per-level record.
        """
        return list(self._placement.loads)

    @property
    def wants_verdict_keys(self) -> bool:
        """Whether level requests should carry verdict-cache keys.

        Mirrors :attr:`SerialRuntime.wants_verdict_keys`: only shard
        engines on the pure-python kernel ever probe the verdict LRU.
        """
        return self.kernel == "python"

    @property
    def level_patterns_posted(self) -> int:
        """Full pattern wires posted by :meth:`batch_support_level`.

        One count per ``(request, shard)`` pair — the ruler the session
        telemetry's ``patterns_full`` uses, letting a stateless
        :class:`DelegatingSession` over this runtime report shipments
        comparably to the stateful session.
        """
        return self._level_patterns_posted

    @property
    def last_level_scan_units(self) -> list[int]:
        """Per-shard scan workload of the most recent support batch.

        One entry per shard (idle shards report zero): the number of
        candidate tids the planner routed there, summed over the batch.
        Sessions surface the max/min of this list as the
        ``shard_scan_max`` / ``shard_scan_min`` telemetry — the signal
        that makes placement skew under label- or size-skewed corpora
        visible per level.
        """
        return list(self._last_level_scan_units)

    # ------------------------------------------------------------------
    # Dispatch: wire accounting + scatter/gather
    # ------------------------------------------------------------------
    def _post(self, shard: int, message: tuple) -> None:
        """Send *message* to *shard*, accounting its wire cost.

        Under the ``buffer`` wire format the logical message is encoded
        as a flat blob here, at the last hop before the pool — replay
        and rebuild paths store and re-post *logical* messages, so a
        replayed level is re-encoded identically.  Messages the codec
        does not cover (control ops, exotic values) fall through to the
        pickle wire; either way the accounted bytes are what the
        process backend's transport would actually carry.
        """
        if self.wire == "buffer":
            blob = encode_message(message)
            if blob is not None:
                self._wire_bytes += len(blob) + _blob_envelope_cost(message[0])
                self._pool.send(shard, (BLOB_OP, message[0], blob))
                return
        self._wire_bytes += wire_cost(message)
        self._pool.send(shard, message)

    def _send_sync(self, shard: int) -> bool:
        """Send the replica's missing label delta; True if a reply is due."""
        delta = self.table.snapshot(self._synced[shard])
        if not delta:
            return False
        self._post(shard, ("labels", delta))
        self._synced[shard] = len(self.table)
        return True

    def _scatter(
        self,
        messages: Sequence[tuple[int, tuple]],
        replay: "Callable[[int], tuple | None] | None" = None,
    ) -> list[tuple[int, int]]:
        """Post every (shard, message) — label sync included — sending all
        before the caller receives anything; returns the recv plan.

        The round's messages are remembered so a shard that dies before
        replying can be replayed after its rebuild.  *replay*, when
        given, supplies a replacement message per shard (sessions use it
        to re-encode delta payloads in full for the store-less rebuilt
        worker); ``None`` from it means "replay verbatim".
        """
        self._round_message = {}
        self._round_replay = replay
        pending: list[tuple[int, int]] = []
        for shard, message in messages:
            synced = self._send_sync(shard)
            self._post(shard, message)
            self._round_message[shard] = message
            pending.append((shard, 2 if synced else 1))
        return pending

    def _gather(self, pending: Sequence[tuple[int, int]]) -> dict[int, Any]:
        """One reply per queued send; the last reply per shard wins.

        Every queued reply is drained before any worker error is
        re-raised, so a failing shard leaves the pipes aligned — the
        runtime (and any open session) stays usable and closeable.

        A :class:`WorkerDeath` (process gone, deadline missed, malformed
        reply) is not an error here: the supervisor recovers the shard in
        place — respawn, rebuild, replay — and the replayed reply slots
        in as if the death never happened.  The death voids whatever else
        the shard still owed this round (a dead worker answers nothing,
        and the replay re-answers the round's message).
        """
        replies: dict[int, Any] = {}
        first_error: BaseException | None = None
        for shard, count in pending:
            ops = [self._round_message[shard][0]]
            if count == 2:
                ops.insert(0, "labels")
            for op in ops:
                try:
                    reply = self._receive(shard, op)
                except WorkerDeath as death:
                    try:
                        replies[shard] = self._recover_shard(shard, death)
                    except WorkerError as error:
                        if first_error is None:
                            first_error = error
                    break
                except WorkerError as error:
                    if first_error is None:
                        first_error = error
                except BaseException as error:  # noqa: BLE001 - re-raised below
                    if first_error is None:
                        first_error = error
                else:
                    replies[shard] = reply
        if first_error is not None:
            raise first_error
        return replies

    # ------------------------------------------------------------------
    # MiningRuntime API
    # ------------------------------------------------------------------
    def add_transactions(self, transactions: Sequence[LabeledGraph]) -> list[int]:
        wires: list[list[tuple]] = [[] for _ in range(self.n_shards)]
        globals_: list[list[int]] = [[] for _ in range(self.n_shards)]
        tids: list[int] = []
        for transaction in transactions:
            compact = CompactGraph.from_labeled(transaction, self.table)
            tid = self._next_global
            self._next_global += 1
            # Deterministic support-weighted placement: the edge count is
            # the level-1 scan cost a shard pays for hosting the
            # transaction, so levelling it attacks the shard_scan skew
            # that size-skewed corpora showed under static round-robin.
            shard = self._placement.place(compact.n_edges)
            wires[shard].append(compact.to_wire())
            globals_[shard].append(tid)
            tids.append(tid)
        # Send everything first so process workers index concurrently.
        pending = self._scatter(
            [
                (shard, ("add", wires[shard]))
                for shard in range(self.n_shards)
                if wires[shard]
            ]
        )
        locals_by_shard = self._gather(pending)
        for shard, locals_ in locals_by_shard.items():
            for local, tid in zip(locals_, globals_[shard]):
                mapping = self._local_to_global[shard]
                if local != len(mapping):
                    # Guards cross-process data, so a real error, not an
                    # assert: a wrong correspondence here would silently
                    # map support sets to the wrong transactions.
                    raise RuntimeError(
                        f"shard {shard} assigned local tid {local}, "
                        f"expected {len(mapping)}"
                    )
                self._home[tid] = (shard, local)
                mapping.append(tid)
        # Retain the acknowledged wires for deterministic rebuild — only
        # after the gather, so a recovery *during* this round rebuilds
        # from the pre-round log and the replayed "add" lands exactly
        # once on the fresh worker.
        for shard in range(self.n_shards):
            if wires[shard]:
                self._shard_wires[shard].extend(wires[shard])
        return tids

    def release_transactions(self, tids: Iterable[int]) -> None:
        by_shard: dict[int, list[int]] = {}
        released: list[int] = []
        seen: set[int] = set()
        for tid in tids:
            if tid in seen:
                # Same contract as a second release_transactions call.
                raise KeyError(f"transaction {tid} has been released from this runtime")
            seen.add(tid)
            shard, local = self.locate(tid)
            by_shard.setdefault(shard, []).append(local)
            released.append(tid)
        pending = self._scatter(
            [
                (shard, ("release", sorted(locals_)))
                for shard, locals_ in sorted(by_shard.items())
            ]
        )
        self._gather(pending)
        # Commit only after the gather (same reason as add_transactions:
        # a mid-round recovery must rebuild the pre-round state, then
        # replay the release).  Released slots keep their position in the
        # rebuild log but swap the graph payload for a shared tombstone.
        for tid in released:
            self._released.add(tid)
        for shard, locals_ in by_shard.items():
            self._shard_released[shard].update(locals_)
            wires = self._shard_wires[shard]
            for local in locals_:
                wires[local] = self._tombstone_wire()

    def batch_support(
        self,
        patterns: Sequence[LabeledGraph],
        tid_lists: Sequence[Sequence[int]] | None = None,
        pattern_keys: Sequence[object] | None = None,
    ) -> list[frozenset[int]]:
        if tid_lists is None:
            live = sorted(tid for tid in self._home if tid not in self._released)
            tid_lists = [live] * len(patterns)
        batches = self.planner.plan(
            patterns, tid_lists, self.table, self.locate, pattern_keys
        )
        self._last_level_scan_units = [
            sum(len(tids) for tids in batch.tid_lists) for batch in batches
        ]
        # Scatter/gather: all shards evaluate their slice of the level
        # concurrently under the process backend.
        pending = self._scatter(
            [
                (batch.shard, ("batch", batch.wires, batch.tid_lists, batch.keys))
                for batch in batches
                if not batch.is_empty()
            ]
        )
        replies = self._gather(pending)
        results: list[Sequence[Sequence[int]] | None] = [
            replies.get(shard) for shard in range(self.n_shards)
        ]
        return self.planner.merge(len(patterns), batches, results, self.to_global)

    def batch_support_level(
        self,
        requests: Sequence[LevelRequest],
        min_support: int | None = None,
    ) -> list[int]:
        batches = self.planner.plan_level(requests, self.table, self.locate, min_support)
        self._last_level_scan_units = [batch.scan_tids for batch in batches]
        self._level_patterns_posted += sum(len(batch.wires) for batch in batches)
        pending = self._scatter(
            [
                (
                    batch.shard,
                    (
                        "level",
                        batch.wires,
                        batch.tid_lists,
                        batch.keys,
                        batch.uids,
                        batch.parent_uids,
                        batch.extensions,
                        batch.abort_bounds,
                    ),
                )
                for batch in batches
                if not batch.is_empty()
            ]
        )
        replies = self._gather(pending)
        results: list[Sequence[Sequence[int]] | None] = [
            replies.get(shard) for shard in range(self.n_shards)
        ]
        return self.planner.merge_level(len(requests), batches, results, self.to_global)

    def open_session(self) -> MiningSession:
        """A mining session under the configured ``session_protocol``."""
        if self.session_protocol == "delta":
            return ShardedSession(self)
        return DelegatingSession(self)

    def drop_anchors(self, uids) -> None:
        # Anchors are shard-local, so every shard is told to retire the
        # level; a shard that never stored a uid treats it as a no-op.
        uid_list = list(uids)
        if not uid_list:
            return
        pending = self._scatter(
            [(shard, ("drop_anchors", uid_list)) for shard in range(self.n_shards)]
        )
        self._gather(pending)

    def stats(self) -> dict[str, int]:
        pending = self._scatter(
            [(shard, ("stats",)) for shard in range(self.n_shards)]
        )
        replies = self._gather(pending)
        merged = merge_stats(replies[shard] for shard in range(self.n_shards))
        merged["shards"] = self.n_shards
        # Wire bytes are counted parent-side (once per posted message),
        # so they are added after the per-shard merge, never summed K times.
        merged["wire_bytes_shipped"] = self._wire_bytes
        # Supervisor counters are parent-side too: zero on a healthy run,
        # and the run report's record of every recovery that happened.
        merged.update(self.recovery)
        return merged

    def close(self) -> None:
        # Defensive attribute access throughout: this also runs from
        # __del__ during interpreter teardown, possibly on an instance
        # whose __init__ never finished (e.g. the pool failed to start).
        if getattr(self, "_closed", True):
            return
        self._closed = True
        # Flush any worker spans gathered after the last level drain
        # (close-time evictions, stats calls) before the pool goes away.
        try:
            self.drain_worker_spans()
        except Exception:  # pragma: no cover - teardown best-effort
            pass
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.close()

    def __del__(self) -> None:  # pragma: no cover - safety net
        try:
            self.close()
        except Exception:
            pass


class ShardedSession(MiningSession):
    """A stateful mining session over a :class:`ShardedEngine`.

    The session keeps, per shard, the set of candidate uids whose
    patterns are resident in that shard's store, plus each resident
    pattern's shard-local hit list (needed to encode next level's delta
    masks).  Residency is exact by construction: the parent adds uids
    when it ships them and removes them on the capacity evictions each
    reply piggybacks, so the planner can decide full-vs-delta without
    ever asking a shard.

    Miner-driven evictions (:meth:`evict`) are deferred and ride on the
    next level message to each shard — retired uids are never referenced
    again, so the laziness trades a broadcast round trip per level for a
    little shard memory.  :meth:`close` flushes whatever is left.
    """

    #: The session protocol strips verdict keys before shipping (shards
    #: always evaluate with ``key=False``), so computing them is pure
    #: waste — see :attr:`MiningSession.wants_keys`.
    wants_keys: bool = False

    def __init__(self, runtime: ShardedEngine) -> None:
        super().__init__()
        self._runtime = runtime
        self._resident: list[set] = [set() for _ in range(runtime.n_shards)]
        self._hits: dict[tuple[int, object], list[int]] = {}
        self._hit_index: dict[tuple[int, object], dict[int, int]] = {}
        self._pending_evict: list[list] = [[] for _ in range(runtime.n_shards)]
        #: Uids a shard capacity-evicted from its *pattern* store; their
        #: anchors are still shard-resident, so a later miner eviction
        #: must still reach that shard.
        self._evicted_anchors: list[set] = [set() for _ in range(runtime.n_shards)]
        #: Levels served so far; the miner primes level 1 first, so call
        #: N is mining level N — what worker spans get stamped with.
        self._level = 0
        self._closed = False
        # A recovered shard comes back with an empty pattern store: the
        # residency model must drop everything it believed about it, or
        # the planner would ship deltas against parents that no longer
        # exist shard-side.
        runtime.add_reset_listener(self._on_shard_reset)

    def _on_shard_reset(self, shard: int) -> None:
        self._resident[shard].clear()
        self._pending_evict[shard] = []
        self._evicted_anchors[shard].clear()
        for key in [key for key in self._hits if key[0] == shard]:
            del self._hits[key]
        for key in [key for key in self._hit_index if key[0] == shard]:
            del self._hit_index[key]

    def _hit_positions(self, shard: int, uid: object) -> dict[int, int] | None:
        """``local tid -> position`` over *uid*'s hit list on *shard*."""
        key = (shard, uid)
        index = self._hit_index.get(key)
        if index is None:
            hits = self._hits.get(key)
            if hits is None:
                return None
            index = {tid: position for position, tid in enumerate(hits)}
            self._hit_index[key] = index
        return index

    def _forget(self, shard: int, uid: object) -> None:
        self._resident[shard].discard(uid)
        self._hits.pop((shard, uid), None)
        self._hit_index.pop((shard, uid), None)

    def support_level(
        self,
        requests: Sequence[LevelRequest],
        min_support: int | None = None,
    ) -> list[int]:
        if self._closed:
            raise RuntimeError("mining session is closed")
        runtime = self._runtime
        telemetry = self._telemetry
        self._level += 1
        planning_started = time.perf_counter()
        batches = runtime.planner.plan_session_level(
            requests,
            runtime.table,
            runtime.locate,
            min_support,
            resident=self._resident,
            hit_positions=self._hit_positions,
        )
        messages: list[tuple[int, tuple]] = []
        for batch in batches:
            if batch.is_empty():
                continue
            evictions = self._pending_evict[batch.shard]
            self._pending_evict[batch.shard] = []
            messages.append(
                (
                    batch.shard,
                    (
                        "slevel",
                        evictions,
                        batch.payloads,
                        batch.uids,
                        batch.parent_uids,
                        batch.extensions,
                        batch.abort_bounds,
                    ),
                )
            )
            self._resident[batch.shard].update(batch.uids)
            full = batch.count_full()
            telemetry["patterns_full"] += full
            telemetry["patterns_delta"] += len(batch.payloads) - full
        # Placement skew across every shard, idle shards included: the
        # level's per-shard scan workload as the planner routed it.
        scan_units = [batch.scan_tids for batch in batches]
        runtime._last_level_scan_units = scan_units
        telemetry["shard_scan_max"] = max(scan_units)
        telemetry["shard_scan_min"] = min(scan_units)
        placement_loads = runtime.placement_loads
        telemetry["placement_weight_max"] = max(placement_loads)
        telemetry["placement_weight_min"] = min(placement_loads)
        telemetry["planning_seconds"] += time.perf_counter() - planning_started
        batch_by_shard = {
            batch.shard: batch for batch in batches if not batch.is_empty()
        }

        def replay(shard: int) -> tuple | None:
            # Re-encode the dead shard's level against its rebuilt,
            # store-less worker: identical uid order and abort bounds,
            # but every payload in full (deltas reference stored parents
            # the fresh store does not have) and no piggybacked
            # evictions (the store they targeted died with the worker).
            batch = batch_by_shard.get(shard)
            if batch is None:
                return None
            payloads = []
            for position in batch.positions:
                request = requests[position]
                locals_ = []
                for tid in tids_of(request.tid_bits):
                    owner, local = runtime.locate(tid)
                    if owner == shard:
                        locals_.append(local)
                payloads.append(
                    (
                        "w",
                        runtime.planner._wire_of(request.pattern, runtime.table),
                        bits_to_buffer(bits_of(locals_)),
                    )
                )
            self._resident[shard].update(batch.uids)
            telemetry["patterns_full"] += len(payloads)
            return (
                "slevel",
                [],
                payloads,
                batch.uids,
                batch.parent_uids,
                batch.extensions,
                batch.abort_bounds,
            )

        wire_before = runtime.wire_bytes_shipped
        recovery_before = dict(runtime.recovery)
        pending = runtime._scatter(messages, replay=replay)
        replies = runtime._gather(pending)
        telemetry["wire_bytes"] += runtime.wire_bytes_shipped - wire_before
        for key in ("worker_restarts", "level_replays"):
            telemetry[key] += runtime.recovery[key] - recovery_before[key]
        results: list[Sequence[Sequence[int]] | None] = [None] * runtime.n_shards
        for batch in batches:
            if batch.is_empty():
                continue
            hit_lists, evicted, store_hits = replies[batch.shard]
            results[batch.shard] = hit_lists
            for uid, hits in zip(batch.uids, hit_lists):
                self._hits[(batch.shard, uid)] = hits
            for uid in evicted:
                self._forget(batch.shard, uid)
                self._evicted_anchors[batch.shard].add(uid)
            telemetry["evictions"] += len(evicted)
            # Shard-observed reconstructions: equals this batch's delta
            # count whenever residency model and shard store agree.
            telemetry["store_hits"] += store_hits
        runtime.drain_worker_spans(level=self._level)
        return runtime.planner.merge_level(
            len(requests), batches, results, runtime.to_global
        )

    def evict(self, uids: Iterable[object]) -> None:
        uid_list = list(uids)
        if not uid_list:
            return
        for shard in range(self._runtime.n_shards):
            # Queue the uid only where shard state for it actually exists
            # — the shards that evaluated it (``_hits``) or that still
            # hold its anchors after a capacity eviction.  Uids the
            # planner never shipped anywhere cost zero wire.  Residency
            # is dropped immediately, so no later delta ever references
            # a pending-evicted parent.
            evicted_anchors = self._evicted_anchors[shard]
            pending = self._pending_evict[shard]
            for uid in uid_list:
                if (shard, uid) in self._hits or uid in evicted_anchors:
                    pending.append(uid)
                    # Same ruler as capacity evictions: one count per
                    # (shard, store entry) actually retired — uids the
                    # planner never shipped anywhere count zero.
                    if (shard, uid) in self._hits:
                        self._telemetry["evictions"] += 1
                    evicted_anchors.discard(uid)
                    self._forget(shard, uid)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        runtime = self._runtime
        runtime.remove_reset_listener(self._on_shard_reset)
        messages: list[tuple[int, tuple]] = []
        for shard in range(runtime.n_shards):
            uids = list(self._pending_evict[shard])
            queued = set(uids)
            leftover = self._resident[shard] | self._evicted_anchors[shard]
            uids.extend(sorted(uid for uid in leftover if uid not in queued))
            self._pending_evict[shard] = []
            self._resident[shard].clear()
            self._evicted_anchors[shard].clear()
            if uids:
                messages.append((shard, ("sevict", uids)))
        self._hits.clear()
        self._hit_index.clear()
        if messages and not getattr(runtime, "_closed", True):
            runtime._gather(runtime._scatter(messages))
            runtime.drain_worker_spans()
