"""Sharded support counting: K engine shards behind one runtime facade.

A :class:`ShardedEngine` partitions registered transactions round-robin
across K shards.  Each shard owns the full matching state for its slice —
a :class:`~repro.graphs.compact.LabelTable` replica, the per-transaction
:class:`~repro.graphs.index.GraphIndex` set, and its own
``(pattern canonical code, tid)`` verdict LRU — so shards never share
mutable state and support counts merge by disjoint union.

Transactions and patterns travel as :class:`CompactGraph` wire tuples:
pure-integer payloads against a label-table replica the parent keeps in
sync by shipping append-only deltas.  Workers therefore never re-intern a
label and never rebuild string keys; with the process backend the pickles
are tuples of small ints.

The shard side is :class:`ShardWorker`, a picklable message handler that
runs identically under both worker-pool backends (inline for ``serial``,
in a daemon process for ``process``) — the backend choice can change
wall-clock, never output.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.graphs.compact import CompactGraph, LabelTable
from repro.graphs.engine import EmbeddingTask, MatchEngine
from repro.graphs.labeled_graph import LabeledGraph
from repro.runtime.base import LevelRequest, MiningRuntime, merge_stats, resolve_backend
from repro.runtime.planner import BatchSupportPlanner
from repro.runtime.pool import make_pool


class ShardWorker:
    """One shard's state and message handler.

    Messages (each answered by exactly one reply):

    ``("labels", labels)``
        Append the parent table's delta to the replica; ack with ``None``.
    ``("add", wires)``
        Register transactions from wire tuples; reply with local tids.
    ``("release", local_tids)``
        Drop transaction references; ack with ``None``.
    ``("batch", wires, tid_lists, keys)``
        Batched support for the patterns against local tids (``keys``
        carries precomputed verdict-cache keys); reply with a sorted
        local tid list per pattern.
    ``("level", wires, tid_lists, keys, uids, parent_uids, extensions, bounds)``
        Incremental (embedding-store) support for one mining level:
        parallel lists per pattern, ``bounds`` being shard-local
        early-abort thresholds.  Anchors stay in this shard's engine —
        only the small uid/extension tokens ever cross the pipe.  Reply
        with a sorted local tid list per pattern.
    ``("drop_anchors", uids)``
        Retire the embedding-store entries of *uids*; ack with ``None``.
    ``("stats",)``
        Reply with the shard engine's counter snapshot.
    """

    def __init__(self) -> None:
        self.table = LabelTable()
        self.engine = MatchEngine(self.table)

    def __call__(self, message: tuple):
        op = message[0]
        if op == "labels":
            self.table.extend(message[1])
            return None
        if op == "add":
            compacts = [CompactGraph.from_wire(wire, self.table) for wire in message[1]]
            return self.engine.add_compact_transactions(compacts)
        if op == "release":
            self.engine.release_transactions(message[1])
            return None
        if op == "batch":
            patterns = [CompactGraph.from_wire(wire, self.table) for wire in message[1]]
            supports = self.engine.batch_support(patterns, message[2], message[3])
            return [sorted(tids) for tids in supports]
        if op == "level":
            _, wires, tid_lists, keys, uids, parent_uids, extensions, bounds = message
            tasks = [
                EmbeddingTask(
                    pattern=CompactGraph.from_wire(wire, self.table),
                    tids=tids,
                    key=key,
                    uid=uid,
                    parent_uid=parent_uid,
                    extension=extension,
                    abort_below=bound,
                )
                for wire, tids, key, uid, parent_uid, extension, bound in zip(
                    wires, tid_lists, keys, uids, parent_uids, extensions, bounds
                )
            ]
            return self.engine.support_with_embeddings(tasks)
        if op == "drop_anchors":
            self.engine.drop_anchors(message[1])
            return None
        if op == "stats":
            return self.engine.stats_snapshot()
        raise ValueError(f"unknown shard message {op!r}")


class ShardedEngine(MiningRuntime):
    """K-shard mining runtime with batched per-level evaluation.

    Parameters
    ----------
    shards:
        Number of shards / workers (K >= 1; prefer >= 2, otherwise use
        :class:`~repro.runtime.base.SerialRuntime`).
    backend:
        ``"process"`` (default, real parallelism via ``multiprocessing``)
        or ``"serial"`` (same code path inline — determinism / debugging).
        ``None`` consults ``REPRO_BACKEND``.
    """

    def __init__(self, shards: int = 2, backend: str | None = None) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.n_shards = shards
        self.backend = resolve_backend(backend)
        self.table = LabelTable()
        self.planner = BatchSupportPlanner(shards)
        self._pool = make_pool(self.backend, shards, ShardWorker)
        self._synced = [0] * shards
        self._local_to_global: list[list[int]] = [[] for _ in range(shards)]
        self._home: dict[int, tuple[int, int]] = {}
        self._released: set[int] = set()
        self._next_global = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def locate(self, tid: int) -> tuple[int, int]:
        """The ``(shard, local tid)`` home of global tid *tid*."""
        if tid in self._released:
            raise KeyError(f"transaction {tid} has been released from this runtime")
        try:
            return self._home[tid]
        except KeyError:
            raise KeyError(f"unknown transaction id {tid}") from None

    def to_global(self, shard: int, local: int) -> int:
        """The global tid of *local* on *shard*."""
        return self._local_to_global[shard][local]

    @property
    def n_transactions(self) -> int:
        """Number of global tid slots handed out (including released ones)."""
        return self._next_global

    # ------------------------------------------------------------------
    # Label-table replication
    # ------------------------------------------------------------------
    def _send_sync(self, shard: int) -> bool:
        """Send the replica's missing label delta; True if a reply is due."""
        delta = self.table.snapshot(self._synced[shard])
        if not delta:
            return False
        self._pool.send(shard, ("labels", delta))
        self._synced[shard] = len(self.table)
        return True

    # ------------------------------------------------------------------
    # MiningRuntime API
    # ------------------------------------------------------------------
    def add_transactions(self, transactions: Sequence[LabeledGraph]) -> list[int]:
        wires: list[list[tuple]] = [[] for _ in range(self.n_shards)]
        globals_: list[list[int]] = [[] for _ in range(self.n_shards)]
        tids: list[int] = []
        for transaction in transactions:
            compact = CompactGraph.from_labeled(transaction, self.table)
            tid = self._next_global
            self._next_global += 1
            shard = tid % self.n_shards
            wires[shard].append(compact.to_wire())
            globals_[shard].append(tid)
            tids.append(tid)
        # Send everything first so process workers index concurrently.
        pending: list[tuple[int, bool]] = []
        for shard in range(self.n_shards):
            if not wires[shard]:
                continue
            synced = self._send_sync(shard)
            self._pool.send(shard, ("add", wires[shard]))
            pending.append((shard, synced))
        for shard, synced in pending:
            if synced:
                self._pool.recv(shard)
            locals_ = self._pool.recv(shard)
            for local, tid in zip(locals_, globals_[shard]):
                mapping = self._local_to_global[shard]
                if local != len(mapping):
                    # Guards cross-process data, so a real error, not an
                    # assert: a wrong correspondence here would silently
                    # map support sets to the wrong transactions.
                    raise RuntimeError(
                        f"shard {shard} assigned local tid {local}, "
                        f"expected {len(mapping)}"
                    )
                self._home[tid] = (shard, local)
                mapping.append(tid)
        return tids

    def release_transactions(self, tids: Iterable[int]) -> None:
        by_shard: dict[int, list[int]] = {}
        for tid in tids:
            shard, local = self.locate(tid)
            by_shard.setdefault(shard, []).append(local)
            self._released.add(tid)
        for shard, locals_ in sorted(by_shard.items()):
            self._pool.send(shard, ("release", sorted(locals_)))
        for shard in sorted(by_shard):
            self._pool.recv(shard)

    def batch_support(
        self,
        patterns: Sequence[LabeledGraph],
        tid_lists: Sequence[Sequence[int]] | None = None,
        pattern_keys: Sequence[object] | None = None,
    ) -> list[frozenset[int]]:
        if tid_lists is None:
            live = sorted(tid for tid in self._home if tid not in self._released)
            tid_lists = [live] * len(patterns)
        batches = self.planner.plan(
            patterns, tid_lists, self.table, self.locate, pattern_keys
        )
        # One pass of sends, then one pass of receives: all shards evaluate
        # their slice of the level concurrently under the process backend.
        pending: list[tuple[int, bool]] = []
        for batch in batches:
            if batch.is_empty():
                continue
            synced = self._send_sync(batch.shard)
            self._pool.send(
                batch.shard, ("batch", batch.wires, batch.tid_lists, batch.keys)
            )
            pending.append((batch.shard, synced))
        results: list[Sequence[Sequence[int]] | None] = [None] * self.n_shards
        for shard, synced in pending:
            if synced:
                self._pool.recv(shard)
            results[shard] = self._pool.recv(shard)
        return self.planner.merge(len(patterns), batches, results, self.to_global)

    def batch_support_level(
        self,
        requests: Sequence[LevelRequest],
        min_support: int | None = None,
    ) -> list[int]:
        batches = self.planner.plan_level(requests, self.table, self.locate, min_support)
        pending: list[tuple[int, bool]] = []
        for batch in batches:
            if batch.is_empty():
                continue
            synced = self._send_sync(batch.shard)
            self._pool.send(
                batch.shard,
                (
                    "level",
                    batch.wires,
                    batch.tid_lists,
                    batch.keys,
                    batch.uids,
                    batch.parent_uids,
                    batch.extensions,
                    batch.abort_bounds,
                ),
            )
            pending.append((batch.shard, synced))
        results: list[Sequence[Sequence[int]] | None] = [None] * self.n_shards
        for shard, synced in pending:
            if synced:
                self._pool.recv(shard)
            results[shard] = self._pool.recv(shard)
        return self.planner.merge_level(len(requests), batches, results, self.to_global)

    def drop_anchors(self, uids) -> None:
        # Anchors are shard-local, so every shard is told to retire the
        # level; a shard that never stored a uid treats it as a no-op.
        uid_list = list(uids)
        if not uid_list:
            return
        self._pool.broadcast(("drop_anchors", uid_list))

    def stats(self) -> dict[str, int]:
        snapshots = self._pool.broadcast(("stats",))
        merged = merge_stats(snapshots)
        merged["shards"] = self.n_shards
        return merged

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._pool.close()

    def __del__(self) -> None:  # pragma: no cover - safety net
        try:
            self.close()
        except Exception:
            pass
