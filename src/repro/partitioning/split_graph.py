"""Algorithm 2: breadth-first / depth-first graph partitioning.

The paper splits the single transportation graph into ``k`` sub-graph
transactions by repeatedly pulling a subgraph out of the working graph:
start from a random vertex, add its incident edges (and their endpoints),
continue from one of the endpoints, and stop when the per-partition edge
quota is reached or the subgraph cannot grow.  Pulled edges are removed
from the working graph so partitions are (almost) mutually exclusive, and
orphaned vertices are dropped after each pull.

The ordering structure determines the partition shape: a FIFO queue
(breadth-first) grows star-like subgraphs that preserve high-out-degree
hub patterns, while a LIFO stack (depth-first) grows long chains.  That
difference is exactly what Figures 2 and 3 of the paper illustrate.
"""

from __future__ import annotations

import enum
import random
from collections import deque
from typing import Iterable

from repro.graphs.components import remove_orphan_vertices
from repro.graphs.labeled_graph import LabeledGraph, VertexId


class PartitionStrategy(str, enum.Enum):
    """Vertex expansion order used by :func:`split_graph`."""

    BREADTH_FIRST = "breadth_first"
    DEPTH_FIRST = "depth_first"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def _next_vertex(ordering: deque, strategy: PartitionStrategy) -> VertexId:
    if strategy is PartitionStrategy.BREADTH_FIRST:
        return ordering.popleft()
    return ordering.pop()


def _pull_subgraph(
    working: LabeledGraph,
    quota: int,
    strategy: PartitionStrategy,
    rng: random.Random,
    name: str,
) -> LabeledGraph:
    """Pull one sub-graph transaction of roughly *quota* edges out of *working*."""
    subgraph = LabeledGraph(name=name)
    remaining = quota
    vertices_with_edges = [vertex for vertex in working.vertices() if working.degree(vertex) > 0]
    if not vertices_with_edges:
        return subgraph
    ordering: deque = deque()
    start = rng.choice(vertices_with_edges)
    ordering.append(start)
    enqueued: set[VertexId] = {start}

    while remaining > 0 and ordering:
        vertex = _next_vertex(ordering, strategy)
        if not working.has_vertex(vertex):
            continue
        if not subgraph.has_vertex(vertex):
            subgraph.add_vertex(vertex, working.vertex_label(vertex))
        incident = working.incident_edges(vertex)
        for edge in incident:
            if remaining <= 0:
                break
            if not working.has_edge(edge.source, edge.target):
                continue
            for endpoint in (edge.source, edge.target):
                if not subgraph.has_vertex(endpoint):
                    subgraph.add_vertex(endpoint, working.vertex_label(endpoint))
            subgraph.add_edge(edge.source, edge.target, edge.label)
            working.remove_edge(edge.source, edge.target)
            remaining -= 1
            other = edge.target if edge.source == vertex else edge.source
            if other not in enqueued:
                ordering.append(other)
                enqueued.add(other)
    return subgraph


def split_graph(
    graph: LabeledGraph,
    k: int,
    strategy: PartitionStrategy | str = PartitionStrategy.BREADTH_FIRST,
    seed: int | None = None,
    rng: random.Random | None = None,
) -> list[LabeledGraph]:
    """Partition *graph* into about *k* sub-graph transactions (Algorithm 2).

    The input graph is not modified.  Every edge of the input appears in
    exactly one partition; empty partitions are dropped, so slightly fewer
    or more than *k* partitions can be returned when the graph disconnects
    awkwardly (the paper notes the same behaviour).

    Parameters
    ----------
    graph:
        The single labeled graph to partition.
    k:
        Target number of partitions.
    strategy:
        :class:`PartitionStrategy` or its string value — breadth-first
        grows hub-like partitions, depth-first grows chain-like ones.
    seed / rng:
        Randomness control; pass *rng* to share a generator across calls
        (Algorithm 1 repeats the split with different randomness).
    """
    if k < 1:
        raise ValueError("the number of partitions k must be at least 1")
    if isinstance(strategy, str):
        strategy = PartitionStrategy(strategy)
    generator = rng if rng is not None else random.Random(seed)

    working = graph.copy()
    total_edges = working.n_edges
    partitions: list[LabeledGraph] = []
    index = 0
    while working.n_edges > 0:
        remaining_partitions = max(1, k - len(partitions))
        quota = max(1, working.n_edges // remaining_partitions)
        name = f"{graph.name}-part{index}"
        subgraph = _pull_subgraph(working, quota, strategy, generator, name)
        remove_orphan_vertices(working)
        if subgraph.n_edges > 0:
            partitions.append(subgraph)
        index += 1
        if index > total_edges + k:
            # Safety net: cannot happen for well-formed graphs, but protects
            # against infinite loops on pathological inputs.
            break
    return partitions


def partition_edge_counts(partitions: Iterable[LabeledGraph]) -> list[int]:
    """Edge counts of the partitions (useful for balance diagnostics)."""
    return [partition.n_edges for partition in partitions]


def coverage_is_exact(graph: LabeledGraph, partitions: Iterable[LabeledGraph]) -> bool:
    """Whether the partitions cover every edge of *graph* exactly once."""
    original = {(edge.source, edge.target) for edge in graph.edges()}
    seen: list[tuple] = []
    for partition in partitions:
        for edge in partition.edges():
            seen.append((edge.source, edge.target))
    return len(seen) == len(original) and set(seen) == original
