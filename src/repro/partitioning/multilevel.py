"""A METIS-like balanced partitioner used as an ablation baseline.

The paper mentions that efficient graph partitioning algorithms such as
METIS exist but deliberately chooses breadth-first / depth-first
edge-pulling because it controls the *shape* of the patterns that survive
partitioning.  To make that argument measurable, this module provides a
simple balanced partitioner in the METIS spirit: vertices are grown into
``k`` regions of roughly equal edge count by greedy region growing
(minimising cut edges), and each region becomes a graph transaction.  The
ablation benchmark compares the pattern shapes and recall obtained with
this partitioner against the paper's BFS / DFS strategies.
"""

from __future__ import annotations

import random
from collections import deque

from repro.graphs.labeled_graph import LabeledGraph, VertexId


def multilevel_partition(
    graph: LabeledGraph,
    k: int,
    seed: int | None = None,
) -> list[LabeledGraph]:
    """Partition *graph* into *k* balanced regions by greedy region growing.

    Each vertex is assigned to exactly one region; a region's transaction
    graph contains the edges whose two endpoints belong to it, so (unlike
    Algorithm 2) cut edges are lost — the trade-off METIS-style
    vertex partitioning makes.
    """
    if k < 1:
        raise ValueError("the number of partitions k must be at least 1")
    rng = random.Random(seed)
    vertices = list(graph.vertices())
    if not vertices:
        return []
    target_size = max(1, len(vertices) // k)

    assignment: dict[VertexId, int] = {}
    unassigned = set(vertices)
    region = 0
    while unassigned:
        seed_vertex = rng.choice(sorted(unassigned, key=str))
        frontier: deque[VertexId] = deque([seed_vertex])
        region_size = 0
        while frontier and region_size < target_size and unassigned:
            vertex = frontier.popleft()
            if vertex not in unassigned:
                continue
            assignment[vertex] = region
            unassigned.discard(vertex)
            region_size += 1
            for neighbour in sorted(graph.neighbours(vertex), key=str):
                if neighbour in unassigned:
                    frontier.append(neighbour)
        region = min(region + 1, k - 1) if region < k - 1 else k - 1

    partitions: list[LabeledGraph] = []
    for region_index in range(k):
        members = [vertex for vertex, assigned in assignment.items() if assigned == region_index]
        if not members:
            continue
        subgraph = graph.subgraph(members)
        subgraph.name = f"{graph.name}-region{region_index}"
        if subgraph.n_edges > 0:
            partitions.append(subgraph)
    return partitions


def cut_edges(graph: LabeledGraph, partitions: list[LabeledGraph]) -> int:
    """Number of edges of *graph* that ended up in no partition (cut by the split)."""
    kept = 0
    for partition in partitions:
        kept += partition.n_edges
    return graph.n_edges - kept
