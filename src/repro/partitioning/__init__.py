"""Partitioning the single transportation graph into graph transactions.

The paper's central device is to make a single large labeled graph
amenable to transaction-based graph miners by partitioning it:

* :mod:`repro.partitioning.split_graph` — Algorithm 2: breadth-first /
  depth-first edge-pulling partitioning of a single graph into
  near-equal-size sub-graph transactions.
* :mod:`repro.partitioning.structural` — Algorithm 1: repeat the
  partitioning several times with different random seeds and mine each
  partitioning with FSG, taking the union of the discovered patterns.
* :mod:`repro.partitioning.temporal` — Section 6: one graph transaction
  per calendar date containing the OD pairs active on that date, split
  into connected components and filtered before mining.
* :mod:`repro.partitioning.multilevel` — a METIS-like balanced
  partitioner used as an ablation baseline (the paper mentions METIS as
  the alternative it chose not to use).
* :mod:`repro.partitioning.windows` — sliding time-window partitioning,
  implementing the Section 9 observation that patterns appearing over a
  time window matter more than patterns visible at a single instant.
"""

from repro.partitioning.split_graph import PartitionStrategy, split_graph
from repro.partitioning.structural import StructuralMiningConfig, mine_single_graph
from repro.partitioning.temporal import (
    TemporalPartitionSummary,
    TemporalTransaction,
    partition_by_date,
    prepare_temporal_transactions,
    summarize_transactions,
)
from repro.partitioning.multilevel import multilevel_partition
from repro.partitioning.windows import WindowTransaction, partition_by_window, window_graphs

__all__ = [
    "WindowTransaction",
    "partition_by_window",
    "window_graphs",
    "PartitionStrategy",
    "split_graph",
    "StructuralMiningConfig",
    "mine_single_graph",
    "TemporalPartitionSummary",
    "TemporalTransaction",
    "partition_by_date",
    "prepare_temporal_transactions",
    "summarize_transactions",
    "multilevel_partition",
]
