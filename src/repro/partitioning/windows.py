"""Time-window temporal partitioning (a Section 9 challenge, implemented).

The paper argues that "patterns that appear over a time window are more
relevant than those appearing at one instant": a circular route that exists
over the space of a week matters even though it is never fully connected on
any single day.  Section 6's per-date partitioning cannot see such
patterns, because each graph transaction contains only the OD pairs active
on one date.

This module generalises the temporal partitioning to sliding windows: one
graph transaction per window of ``window_days`` consecutive dates (advanced
by ``stride_days``), containing every OD pair active at any point inside
the window.  A cycle completed over a week then appears inside a 7-day
window transaction and can be mined by the same FSG machinery; mining
windows of increasing length shows which patterns only exist "over time".
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta
from typing import Sequence

from repro.datasets.binning import BinningScheme, default_binning_scheme
from repro.datasets.schema import TransactionDataset
from repro.graphs.labeled_graph import LabeledGraph, LabeledMultiGraph


@dataclass
class WindowTransaction:
    """One graph transaction covering a window of consecutive dates."""

    window_start: date
    window_end: date
    graph: LabeledGraph

    @property
    def window_days(self) -> int:
        """Number of dates covered by the window (inclusive)."""
        return (self.window_end - self.window_start).days + 1

    @property
    def n_edges(self) -> int:
        """Edges in the window graph."""
        return self.graph.n_edges


def partition_by_window(
    dataset: TransactionDataset,
    window_days: int = 7,
    stride_days: int | None = None,
    edge_attribute: str = "GROSS_WEIGHT",
    binning: BinningScheme | None = None,
    vertex_labeling: str = "location",
) -> list[WindowTransaction]:
    """One graph transaction per sliding window of dates.

    Parameters
    ----------
    dataset:
        The transaction dataset to partition.
    window_days:
        Window length in days; ``window_days=1`` reduces to the Section 6
        per-date partitioning (with pickup-to-delivery activity).
    stride_days:
        How far consecutive windows are advanced; defaults to the window
        length (non-overlapping windows).
    edge_attribute / binning:
        Edge labeling, as for the other graph builders.
    vertex_labeling:
        ``"location"`` (default, Section 6 semantics) or ``"uniform"``.
    """
    if window_days < 1:
        raise ValueError("window_days must be at least 1")
    stride = stride_days if stride_days is not None else window_days
    if stride < 1:
        raise ValueError("stride_days must be at least 1")
    if vertex_labeling not in ("location", "uniform"):
        raise ValueError("vertex_labeling must be 'location' or 'uniform'")
    if len(dataset) == 0:
        return []

    scheme = binning or default_binning_scheme()
    first_date, last_date = dataset.date_range()

    windows: list[WindowTransaction] = []
    window_start = first_date
    while window_start <= last_date:
        window_end = window_start + timedelta(days=window_days - 1)
        graph = LabeledMultiGraph(name=f"window-{window_start.isoformat()}")
        for transaction in dataset:
            if transaction.req_delivery_dt < window_start or transaction.req_pickup_dt > window_end:
                continue
            for location in (transaction.origin, transaction.destination):
                label = location.label() if vertex_labeling == "location" else "place"
                graph.add_vertex(location, label)
            graph.add_edge(
                transaction.origin,
                transaction.destination,
                scheme.edge_label(transaction, edge_attribute),
            )
        simplified = graph.simplify()
        if simplified.n_edges > 0:
            windows.append(
                WindowTransaction(window_start=window_start, window_end=window_end, graph=simplified)
            )
        window_start += timedelta(days=stride)
    return windows


def window_graphs(windows: Sequence[WindowTransaction]) -> list[LabeledGraph]:
    """Extract the plain graphs (the form the FSG miner consumes)."""
    return [window.graph for window in windows]


def patterns_only_visible_over_windows(
    single_day_patterns: int,
    window_patterns: int,
) -> int:
    """How many additional frequent patterns a window view exposes.

    A convenience used by the window-length ablation benchmark: the
    difference between the pattern count mined from window transactions and
    the count mined from per-date transactions of the same data.
    """
    return max(0, window_patterns - single_day_patterns)
