"""Temporal partitioning of the transportation graph (Section 6).

To find routes repeated in *time* rather than space, the paper partitions
the data by date: each graph transaction contains every OD pair active on
that date (a pair is active on every date between the requested pickup and
delivery dates).  Vertices keep a unique label derived from their
latitude/longitude so the same physical route supports the same pattern
across days, and edges carry the binned gross weight.

Before mining, the paper further processes the per-day transactions:

* each disconnected graph transaction is broken into its connected
  components (FSG only finds connected patterns, and the distinct vertex
  labels prevent components of the same day from supporting one pattern);
* transactions with a single edge are dropped as uninteresting;
* duplicate edges within a transaction are removed (FSG operates on
  graphs, not multigraphs);
* for the experiment that actually completed, dates with 200 or more
  distinct vertex labels were excluded (Table 3).

:func:`partition_by_date`, :func:`prepare_temporal_transactions`, and
:func:`summarize_transactions` implement those steps and the Table 2 /
Table 3 summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Sequence

from repro.datasets.binning import BinningScheme, default_binning_scheme
from repro.datasets.schema import TransactionDataset
from repro.graphs.components import connected_components
from repro.graphs.labeled_graph import LabeledGraph, LabeledMultiGraph


@dataclass
class TemporalTransaction:
    """One graph transaction produced by the temporal partitioning."""

    active_date: date
    graph: LabeledGraph
    component_index: int = 0

    @property
    def n_edges(self) -> int:
        """Edges in the transaction graph."""
        return self.graph.n_edges

    @property
    def n_vertices(self) -> int:
        """Vertices in the transaction graph."""
        return self.graph.n_vertices


@dataclass(frozen=True)
class TemporalPartitionSummary:
    """The statistics reported in Tables 2 and 3 of the paper."""

    n_transactions: int
    n_distinct_edge_labels: int
    n_distinct_vertex_labels: int
    average_edges: float
    average_vertices: float
    max_edges: int
    max_vertices: int
    size_histogram: dict[str, int]

    def as_rows(self) -> list[tuple[str, object]]:
        """Rows in the order the paper prints them."""
        rows: list[tuple[str, object]] = [
            ("Number of Input Transactions", self.n_transactions),
            ("Number of Distinct Edge Labels", self.n_distinct_edge_labels),
            ("Number of Distinct Vertex Labels", self.n_distinct_vertex_labels),
            ("Average Number of Edges In a Transaction", round(self.average_edges, 1)),
            ("Average Number of Vertices In a Transaction", round(self.average_vertices, 1)),
            ("Max Number of Edges In a Transaction", self.max_edges),
            ("Max Number of Vertices In a Transaction", self.max_vertices),
        ]
        for bucket, count in self.size_histogram.items():
            rows.append((f"Graph Transactions with Size between {bucket}", count))
        return rows


#: Edge-count buckets used by Table 2's size histogram.
SIZE_BUCKETS: tuple[tuple[int, int], ...] = (
    (1, 10),
    (10, 100),
    (100, 1_000),
    (1_000, 2_000),
    (2_000, 5_000),
)


def partition_by_date(
    dataset: TransactionDataset,
    edge_attribute: str = "GROSS_WEIGHT",
    binning: BinningScheme | None = None,
    use_interval_labels: bool = False,
) -> list[TemporalTransaction]:
    """One graph transaction per date with the OD pairs active on that date.

    Vertices are labeled with their latitude/longitude (unique per place);
    edges are labeled with the binned edge attribute.  Duplicate edges
    (several active loads on the same lane on the same day) are collapsed,
    keeping the most common label, because FSG operates on simple graphs.
    """
    scheme = binning or default_binning_scheme()
    per_date: dict[date, LabeledMultiGraph] = {}
    for transaction in dataset:
        if use_interval_labels:
            edge_label = scheme.edge_interval(transaction, edge_attribute)
        else:
            edge_label = scheme.edge_label(transaction, edge_attribute)
        for active in transaction.active_dates():
            graph = per_date.setdefault(active, LabeledMultiGraph(name=f"day-{active.isoformat()}"))
            graph.add_vertex(transaction.origin, transaction.origin.label())
            graph.add_vertex(transaction.destination, transaction.destination.label())
            graph.add_edge(transaction.origin, transaction.destination, edge_label)
    transactions = [
        TemporalTransaction(active_date=day, graph=multigraph.simplify())
        for day, multigraph in sorted(per_date.items())
    ]
    return transactions


def prepare_temporal_transactions(
    transactions: Sequence[TemporalTransaction],
    split_components: bool = True,
    drop_single_edge: bool = True,
    max_vertex_labels: int | None = None,
) -> list[TemporalTransaction]:
    """Apply the Section 6 preprocessing to per-day transactions.

    ``max_vertex_labels`` reproduces the Table 3 filter: the paper could
    only run FSG after limiting the data to dates with fewer than 200
    distinct vertex labels.  The filter applies to the per-day graph
    before component splitting, as in the paper.
    """
    prepared: list[TemporalTransaction] = []
    for transaction in transactions:
        if max_vertex_labels is not None:
            n_labels = len(set(
                transaction.graph.vertex_label(v) for v in transaction.graph.vertices()
            ))
            if n_labels >= max_vertex_labels:
                continue
        if split_components:
            components = connected_components(transaction.graph)
        else:
            components = [transaction.graph]
        for index, component in enumerate(components):
            if drop_single_edge and component.n_edges <= 1:
                continue
            prepared.append(
                TemporalTransaction(
                    active_date=transaction.active_date,
                    graph=component,
                    component_index=index,
                )
            )
    return prepared


def summarize_transactions(transactions: Sequence[TemporalTransaction]) -> TemporalPartitionSummary:
    """Compute the Table 2 / Table 3 statistics of a set of graph transactions."""
    if not transactions:
        raise ValueError("cannot summarise an empty transaction list")
    edge_labels: set[object] = set()
    vertex_labels: set[object] = set()
    edge_counts: list[int] = []
    vertex_counts: list[int] = []
    for transaction in transactions:
        graph = transaction.graph
        edge_counts.append(graph.n_edges)
        vertex_counts.append(graph.n_vertices)
        for edge in graph.edges():
            edge_labels.add(edge.label)
        for vertex in graph.vertices():
            vertex_labels.add(graph.vertex_label(vertex))

    histogram: dict[str, int] = {}
    for low, high in SIZE_BUCKETS:
        label = f"{low} to {high}"
        histogram[label] = sum(1 for count in edge_counts if low <= count < high)

    return TemporalPartitionSummary(
        n_transactions=len(transactions),
        n_distinct_edge_labels=len(edge_labels),
        n_distinct_vertex_labels=len(vertex_labels),
        average_edges=sum(edge_counts) / len(edge_counts),
        average_vertices=sum(vertex_counts) / len(vertex_counts),
        max_edges=max(edge_counts),
        max_vertices=max(vertex_counts),
        size_histogram=histogram,
    )


def graphs_of(transactions: Sequence[TemporalTransaction]) -> list[LabeledGraph]:
    """Extract the plain graphs (the form the FSG miner consumes)."""
    return [transaction.graph for transaction in transactions]
