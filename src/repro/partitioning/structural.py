"""Algorithm 1: frequent subgraphs in a single graph via repeated partitioning.

The paper's recipe for mining a single graph with a transaction-based
miner: partition the graph into ``k`` sub-graph transactions, mine them
with FSG at support ``s``, repeat ``m`` times with a different random
partitioning each time, and return the union of the discovered patterns.
If a subgraph is frequent across one partitioning it is frequent in the
whole graph; repeating reduces the *false drops* — patterns that fail to
look frequent because the partitioning split their occurrences.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.graphs.engine import MatchEngine
from repro.graphs.labeled_graph import LabeledGraph
from repro.mining.fsg.miner import FSGMiner
from repro.mining.fsg.results import FSGResult, FrequentSubgraph
from repro.partitioning.split_graph import PartitionStrategy, split_graph
from repro.runtime import MiningRuntime, create_runtime, resolve_workers


@dataclass
class StructuralMiningConfig:
    """Configuration of the repeated-partitioning structural miner.

    Mirrors the knobs of Algorithm 1: ``k`` partitions, ``m`` repetitions,
    support threshold ``s`` (absolute count, as in the paper's 120 / 240
    settings), plus the partitioning strategy and the FSG size/budget
    limits.  ``workers`` selects the parallel mining runtime for support
    counting (``None`` consults ``REPRO_WORKERS``; ``0``/``1`` = serial,
    ``>= 2`` = that many shards on *backend*); parallelism never changes
    the mined patterns, only wall-clock.  ``kernel`` picks the match
    kernel (``"python"`` or ``"vectorized"``; ``None`` consults
    ``REPRO_KERNEL``) — likewise wall-clock only.
    """

    k: int = 400
    repetitions: int = 2
    min_support: float | int = 5
    strategy: PartitionStrategy = PartitionStrategy.BREADTH_FIRST
    max_pattern_edges: int | None = 6
    min_pattern_edges: int = 1
    memory_budget: int | None = None
    seed: int = 17
    workers: int | None = None
    backend: str | None = None
    kernel: str | None = None


@dataclass
class StructuralMiningResult:
    """Union of the frequent patterns found across all repetitions."""

    patterns: list[FrequentSubgraph] = field(default_factory=list)
    per_repetition_counts: list[int] = field(default_factory=list)
    per_repetition_results: list[FSGResult] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self):
        return iter(self.patterns)

    @property
    def average_patterns_per_repetition(self) -> float:
        """Average number of frequent patterns per repetition (as reported in Section 5.2.2)."""
        if not self.per_repetition_counts:
            return 0.0
        return sum(self.per_repetition_counts) / len(self.per_repetition_counts)


def _merge_patterns(
    target: list[FrequentSubgraph],
    new_patterns: list[FrequentSubgraph],
    engine: MatchEngine,
) -> None:
    """Union new patterns into *target*, deduplicating up to isomorphism.

    When the same pattern appears in several repetitions the maximum
    observed support is kept.  Invariants and isomorphism checks run
    through the shared *engine*, so patterns accumulated in earlier
    repetitions keep their memoized fingerprints and indexes.
    """
    index: dict[str, list[int]] = {}
    for position, existing in enumerate(target):
        index.setdefault(engine.graph_invariant(existing.pattern), []).append(position)
    for pattern in new_patterns:
        key = engine.graph_invariant(pattern.pattern)
        merged = False
        for position in index.get(key, []):
            existing = target[position]
            if engine.are_isomorphic(existing.pattern, pattern.pattern):
                if pattern.support > existing.support:
                    target[position] = pattern
                merged = True
                break
        if not merged:
            index.setdefault(key, []).append(len(target))
            target.append(pattern)


def mine_single_graph(
    graph: LabeledGraph,
    config: StructuralMiningConfig | None = None,
    engine: MatchEngine | None = None,
    runtime: MiningRuntime | None = None,
) -> StructuralMiningResult:
    """Run Algorithm 1 on *graph* and return the union of frequent patterns.

    One :class:`MatchEngine` (a private one unless *engine* is given)
    serves every repetition: the label table, per-pattern canonical codes,
    and cross-repetition pattern merging all share its caches.  Support
    counting goes through *runtime* when given (a shared
    :class:`~repro.runtime.shards.ShardedEngine`, say); otherwise a
    runtime is built from ``config.workers`` — and closed again on exit —
    with the serial default feeding everything through *engine* as before.
    """
    settings = config or StructuralMiningConfig()
    if settings.repetitions < 1:
        raise ValueError("repetitions must be at least 1")
    shared_engine = engine if engine is not None else MatchEngine(kernel=settings.kernel)
    created_runtime: MiningRuntime | None = None
    if runtime is None and resolve_workers(settings.workers) > 1:
        runtime = created_runtime = create_runtime(
            workers=settings.workers, backend=settings.backend, kernel=settings.kernel
        )
    rng = random.Random(settings.seed)
    miner = FSGMiner(
        min_support=settings.min_support,
        max_edges=settings.max_pattern_edges,
        memory_budget=settings.memory_budget,
        min_pattern_edges=settings.min_pattern_edges,
        engine=shared_engine,
        runtime=runtime,
    )
    result = StructuralMiningResult()
    try:
        for _ in range(settings.repetitions):
            partitions = split_graph(graph, settings.k, strategy=settings.strategy, rng=rng)
            mined = miner.mine(partitions)
            result.per_repetition_results.append(mined)
            result.per_repetition_counts.append(len(mined.patterns))
            _merge_patterns(result.patterns, mined.patterns, shared_engine)
    finally:
        if created_runtime is not None:
            created_runtime.close()
    return result
