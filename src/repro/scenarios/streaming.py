"""A production-scale streaming corpus that is never fully materialised.

The registered scenarios are small by design: every one of them is built
in full, mined by four engines, and differentially re-mined under every
runtime configuration.  That leaves a verification gap at the other end
of the scale — a corpus of 100,000 transactions does not fit the full
harness, but production deployments are exactly that size, and bugs of
scale (accumulating caches, quadratic bookkeeping, order-dependent
counters) only show up there.

:class:`StreamingMobilityCorpus` closes the gap.  Transaction *i* is a
pure function of ``(seed, i)``, so the corpus supports random access,
batched iteration, and exact replay without ever holding more than one
batch in memory.  Verification uses :func:`sampled_digest`: a SHA-256
over streaming-computable fingerprints — level-1 edge-triple supports,
level-2 two-edge-path supports, and canonical codes of a deterministic
evenly-spaced reservoir of transactions.  The digest is pinned in
``tests/golden/streaming.json`` and checked in the slow CI lane together
with a peak-memory assertion that proves the corpus stayed lazy.
"""

from __future__ import annotations

import tracemalloc
from collections import Counter
from dataclasses import dataclass
from typing import Iterator

import random

from repro.graphs.engine import MatchEngine
from repro.graphs.labeled_graph import LabeledGraph
from repro.scenarios.harness import pattern_code, payload_digest

#: Zone vocabulary size; popularity follows a power law over the ranks.
_N_ZONES = 40

#: Size of the hot core absorbing most of the traffic.
_HOT_ZONES = 6

#: Edge-label alphabet (weight bins, as in the paper's binned edges).
_WEIGHT_BINS = 4

#: Multiplier decorrelating per-transaction seeds (a large prime keeps
#: neighbouring tids' generators far apart in the Mersenne state space).
_TID_SEED_STRIDE = 1_000_003

#: How many transactions the sampled digest canonicalises in full.
RESERVOIR_SIZE = 64

#: How many top support rows of each level the sampled digest pins.
TOP_SUPPORTS = 120


@dataclass(frozen=True)
class StreamingMobilityCorpus:
    """A lazy corpus of trip-chain transactions over a zone network.

    Transaction ``tid`` is generated from ``random.Random(seed *
    1_000_003 + tid)`` — integer seeding, so the output is independent of
    ``PYTHONHASHSEED`` and identical across processes.  Nothing is cached;
    holding the object costs a few hundred bytes regardless of
    ``n_transactions``.
    """

    n_transactions: int = 100_000
    seed: int = 20050405

    def __post_init__(self) -> None:
        if self.n_transactions < 1:
            raise ValueError("n_transactions must be at least 1")

    def __len__(self) -> int:
        return self.n_transactions

    def transaction(self, tid: int) -> LabeledGraph:
        """Build transaction *tid* (a pure function of the corpus seed)."""
        if not 0 <= tid < self.n_transactions:
            raise IndexError(f"tid {tid} outside [0, {self.n_transactions})")
        rng = random.Random(self.seed * _TID_SEED_STRIDE + tid)
        n_stops = rng.randint(3, 6)
        # Power-law zone popularity: low ranks are visited far more often,
        # so frequent patterns concentrate on a small hot core while the
        # tail keeps the label alphabet realistic.
        stops: list[int] = []
        while len(stops) < n_stops:
            if rng.random() < 0.75:
                # Hot core: three quarters of all stops hit the six most
                # popular zones, so frequent patterns exist even in small
                # prefixes of the corpus.
                zone = int(_HOT_ZONES * (rng.random() ** 2))
            else:
                zone = _HOT_ZONES + int((_N_ZONES - _HOT_ZONES) * rng.random())
            zone = min(zone, _N_ZONES - 1)
            if zone not in stops:
                stops.append(zone)
        graph = LabeledGraph(name=f"stream{tid}")
        for position, zone in enumerate(stops):
            graph.add_vertex(f"v{position}", f"z{zone:02d}")
        # Half of all trips start in the lightest bin (LTL-dominated
        # traffic), the rest spread over the full range.
        base_bin = 0 if rng.random() < 0.5 else rng.randrange(_WEIGHT_BINS)
        for position in range(len(stops) - 1):
            # Consecutive legs of a trip carry correlated weights: stay in
            # the same bin most of the time, drift by one otherwise.
            if rng.random() < 0.3:
                base_bin = min(_WEIGHT_BINS - 1, max(0, base_bin + rng.choice((-1, 1))))
            graph.add_edge(f"v{position}", f"v{position + 1}", f"w{base_bin}")
        if rng.random() < 0.25:
            # A return leg closes the chain into a cycle.
            graph.add_edge(f"v{len(stops) - 1}", "v0", f"w{base_bin}")
        return graph

    def iter_batches(self, batch_size: int = 512) -> Iterator[list[tuple[int, LabeledGraph]]]:
        """Yield ``(tid, graph)`` batches; at most one batch is live at a time."""
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        batch: list[tuple[int, LabeledGraph]] = []
        for tid in range(self.n_transactions):
            batch.append((tid, self.transaction(tid)))
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def head(self, count: int) -> list[LabeledGraph]:
        """The first *count* transactions, materialised.

        ``transaction(tid)`` does not depend on ``n_transactions``, so the
        head of the 100k corpus equals a small corpus with the same seed —
        which is how the registered ``streaming-mobility-head`` scenario
        puts the generator under the full differential gate.
        """
        return [self.transaction(tid) for tid in range(min(count, self.n_transactions))]

    def reservoir_tids(self, size: int = RESERVOIR_SIZE) -> list[int]:
        """A deterministic, evenly spaced sample of transaction ids."""
        stride = max(1, self.n_transactions // size)
        return list(range(0, self.n_transactions, stride))[:size]


def _edge_triples(graph: LabeledGraph) -> set[tuple[str, str, str]]:
    """The distinct (source-label, edge-label, target-label) triples."""
    return {
        (
            str(graph.vertex_label(edge.source)),
            str(edge.label),
            str(graph.vertex_label(edge.target)),
        )
        for edge in graph.edges()
    }


def _path_signatures(graph: LabeledGraph) -> set[tuple[str, ...]]:
    """Distinct label signatures of directed two-edge paths ``a -> b -> c``.

    A streaming-computable stand-in for level-2 FSG patterns: the
    signature is naming-independent by construction and cheap enough to
    enumerate for every transaction of a 100k corpus.
    """
    outgoing: dict[str, list] = {}
    for edge in graph.edges():
        outgoing.setdefault(edge.source, []).append(edge)
    signatures: set[tuple[str, ...]] = set()
    for edge in graph.edges():
        for follow in outgoing.get(edge.target, ()):
            if follow.target == edge.source and follow.source == edge.target:
                # Skip the degenerate a -> b -> a backtrack.
                continue
            signatures.add(
                (
                    str(graph.vertex_label(edge.source)),
                    str(edge.label),
                    str(graph.vertex_label(edge.target)),
                    str(follow.label),
                    str(graph.vertex_label(follow.target)),
                )
            )
    return signatures


def _top_rows(supports: Counter, top: int) -> list[list]:
    """The *top* most supported signatures in a canonical order."""
    ranked = sorted(supports.items(), key=lambda item: (-item[1], item[0]))
    return [[list(signature), count] for signature, count in ranked[:top]]


def sampled_digest(
    corpus: StreamingMobilityCorpus,
    batch_size: int = 512,
    reservoir_size: int = RESERVOIR_SIZE,
    top_supports: int = TOP_SUPPORTS,
) -> str:
    """Streaming verification digest of *corpus*.

    One pass over the corpus in bounded batches accumulates level-1
    triple supports, level-2 path supports, and the canonical codes of
    the deterministic reservoir; the payload digest pins all three.  The
    working set is the support counters plus one batch — independent of
    corpus length.
    """
    reservoir = set(corpus.reservoir_tids(reservoir_size))
    level1: Counter = Counter()
    level2: Counter = Counter()
    reservoir_codes: dict[int, str] = {}
    engine = MatchEngine()
    for batch in corpus.iter_batches(batch_size):
        for tid, graph in batch:
            for triple in _edge_triples(graph):
                level1[triple] += 1
            for signature in _path_signatures(graph):
                level2[signature] += 1
            if tid in reservoir:
                reservoir_codes[tid] = pattern_code(engine, graph)
    payload = {
        "corpus": "streaming-mobility",
        "n_transactions": len(corpus),
        "seed": corpus.seed,
        "level1_top": _top_rows(level1, top_supports),
        "level2_top": _top_rows(level2, top_supports),
        "level1_distinct": len(level1),
        "level2_distinct": len(level2),
        "reservoir": [[tid, reservoir_codes[tid]] for tid in sorted(reservoir_codes)],
    }
    return payload_digest(payload)


def stream_report(
    corpus: StreamingMobilityCorpus,
    batch_size: int = 512,
) -> dict:
    """Run :func:`sampled_digest` under ``tracemalloc`` and report both.

    The returned dict is what the CLI ``scenarios stream`` command writes
    as a CI artifact: the digest, the corpus parameters, and the peak
    traced allocation — the number the slow-lane test asserts stays far
    below the size of a materialised corpus.
    """
    tracemalloc.start()
    try:
        digest = sampled_digest(corpus, batch_size=batch_size)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return {
        "corpus": "streaming-mobility",
        "n_transactions": len(corpus),
        "seed": corpus.seed,
        "batch_size": batch_size,
        "sampled_digest": digest,
        "peak_traced_bytes": peak,
    }
