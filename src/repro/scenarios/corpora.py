"""The built-in scenario corpora.

Each builder below is a pure function of its seed producing a
:class:`~repro.scenarios.base.ScenarioData`.  The set deliberately spans
the shapes that have historically broken graph miners:

* ``dense-uniform`` — densely connected transactions over a tiny label
  alphabet, the worst case for embedding enumeration;
* ``sparse-chains`` — tree/path transactions, the best case for early
  rejection;
* ``label-skew`` — one dominant label with a long rare tail, stressing
  candidate-bucket filtering;
* ``heavy-multigraph`` — corpora born as multigraphs with parallel edges
  and collapsed through :meth:`LabeledMultiGraph.simplify`;
* ``temporal-drift`` — the label distribution drifts across the corpus,
  so early and late transactions support different patterns;
* ``planted-patterns`` — a single graph assembled from known motifs and
  re-partitioned into transactions, with recall ground truth;
* ``adversarial-isomorphs`` — near-isomorphic symmetric graphs (uniform
  stars and rings, some too symmetric to canonicalise) that stress
  candidate deduplication;
* ``transportation-od`` — the paper's own synthetic OD dataset at a tiny
  scale, partitioned into graph transactions;
* ``messy-mobility`` — a multi-source mobility feed with synonym zone
  names, missing values, and coordinate/timestamp outliers, forced
  through schema cleaning and attribute binning *before* graph
  construction, so the digest covers the whole ingest pipeline;
* ``stress-powerlaw`` — power-law transaction sizes and label skew, so
  round-robin shard placement produces visibly unbalanced scan work;
* ``stress-nearclique`` — uniform near-cliques whose symmetry defeats
  canonicalisation, forcing the invariant fallback on the digest path;
* ``stress-windows`` — overlapping temporal windows (stride < window)
  of the paper's OD data, so the same trip supports several
  transactions;
* ``streaming-mobility-head`` — the head of the 100k streaming corpus
  (see :mod:`repro.scenarios.streaming`), putting the streaming
  generator under the full differential gate at a mineable size.
"""

from __future__ import annotations

import random
from datetime import timedelta

from repro.datasets.generator import (
    GeneratorConfig,
    MobilityConfig,
    TransportationDataGenerator,
    generate_messy_mobility_records,
    mobility_zone_directory,
)
from repro.datasets.schema import TransactionDataset, clean_mobility_records
from repro.partitioning.windows import partition_by_window, window_graphs
from repro.graphs.builders import build_od_graph
from repro.graphs.labeled_graph import LabeledGraph, LabeledMultiGraph
from repro.graphs.motifs import chain, cycle, hub_and_spoke
from repro.partitioning.split_graph import PartitionStrategy, split_graph
from repro.patterns.planted import PlantedGraphSpec, build_planted_graph
from repro.scenarios.base import (
    MiningParams,
    Scenario,
    ScenarioData,
    register,
    stitch_transactions,
)
from repro.scenarios.streaming import StreamingMobilityCorpus


def _random_graph(
    rng: random.Random,
    name: str,
    n_vertices: int,
    n_edges: int,
    vertex_labels: list[str],
    edge_labels: list[str],
) -> LabeledGraph:
    """A random simple directed graph with labels drawn uniformly."""
    graph = LabeledGraph(name=name)
    for v in range(n_vertices):
        graph.add_vertex(f"v{v}", rng.choice(vertex_labels))
    attempts = 0
    while graph.n_edges < n_edges and attempts < n_edges * 10:
        attempts += 1
        a, b = rng.sample(range(n_vertices), 2)
        if graph.has_edge(f"v{a}", f"v{b}"):
            continue
        graph.add_edge(f"v{a}", f"v{b}", rng.choice(edge_labels))
    return graph


def _build_dense_uniform(seed: int) -> ScenarioData:
    rng = random.Random(seed)
    transactions = []
    for index in range(22):
        n_vertices = rng.randint(6, 8)
        n_edges = min(n_vertices * (n_vertices - 1), int(n_vertices * 2.2))
        transactions.append(
            _random_graph(
                rng, f"dense{index}", n_vertices, n_edges, ["depot", "stop"], ["x", "y"]
            )
        )
    return ScenarioData(transactions=transactions, host=stitch_transactions(transactions))


def _build_sparse_chains(seed: int) -> ScenarioData:
    rng = random.Random(seed)
    transactions = []
    for index in range(28):
        n_vertices = rng.randint(5, 9)
        graph = LabeledGraph(name=f"sparse{index}")
        labels = ["depot", "hub", "stop"]
        graph.add_vertex("v0", rng.choice(labels))
        for v in range(1, n_vertices):
            graph.add_vertex(f"v{v}", rng.choice(labels))
            # Attach to a random earlier vertex: always a tree.
            parent = rng.randrange(v)
            graph.add_edge(f"v{parent}", f"v{v}", rng.choice(["x", "y"]))
        transactions.append(graph)
    return ScenarioData(transactions=transactions, host=stitch_transactions(transactions))


def _skewed_choice(rng: random.Random, hot: str, rare: list[str], hot_probability: float) -> str:
    if rng.random() < hot_probability:
        return hot
    return rng.choice(rare)


def _build_label_skew(seed: int) -> ScenarioData:
    rng = random.Random(seed)
    rare_vertex = [f"rare{i}" for i in range(5)]
    rare_edge = [f"e{i}" for i in range(4)]
    transactions = []
    for index in range(24):
        n_vertices = rng.randint(5, 8)
        graph = LabeledGraph(name=f"skew{index}")
        for v in range(n_vertices):
            graph.add_vertex(f"v{v}", _skewed_choice(rng, "hot", rare_vertex, 0.75))
        n_edges = n_vertices + rng.randint(0, 3)
        attempts = 0
        while graph.n_edges < n_edges and attempts < n_edges * 10:
            attempts += 1
            a, b = rng.sample(range(n_vertices), 2)
            if graph.has_edge(f"v{a}", f"v{b}"):
                continue
            graph.add_edge(f"v{a}", f"v{b}", _skewed_choice(rng, "w", rare_edge, 0.8))
        transactions.append(graph)
    return ScenarioData(transactions=transactions, host=stitch_transactions(transactions))


def _build_heavy_multigraph(seed: int) -> ScenarioData:
    rng = random.Random(seed)
    transactions = []
    for index in range(20):
        n_vertices = rng.randint(4, 7)
        multigraph = LabeledMultiGraph(name=f"multi{index}")
        for v in range(n_vertices):
            multigraph.add_vertex(f"v{v}", rng.choice(["port", "yard"]))
        for _ in range(n_vertices + rng.randint(1, 4)):
            a, b = rng.sample(range(n_vertices), 2)
            # Several parallel trips per lane; simplify() keeps the most
            # common label, which is the corpus the miners actually see.
            for _ in range(rng.randint(1, 4)):
                multigraph.add_edge(f"v{a}", f"v{b}", rng.choice(["am", "pm"]))
        transactions.append(multigraph.simplify())
    return ScenarioData(transactions=transactions, host=stitch_transactions(transactions))


def _build_temporal_drift(seed: int) -> ScenarioData:
    rng = random.Random(seed)
    transactions = []
    n_transactions = 28
    for index in range(n_transactions):
        # The edge alphabet drifts from {early, mid} to {mid, late} across
        # the corpus, so the frequent set depends on both regimes.
        progress = index / (n_transactions - 1)
        edge_labels = ["early", "mid"] if progress < 0.5 else ["mid", "late"]
        n_vertices = rng.randint(5, 8)
        transactions.append(
            _random_graph(
                rng,
                f"drift{index}",
                n_vertices,
                n_vertices + rng.randint(0, 3),
                ["site"],
                edge_labels,
            )
        )
    return ScenarioData(transactions=transactions, host=stitch_transactions(transactions))


def _build_planted_patterns(seed: int) -> ScenarioData:
    spec = PlantedGraphSpec(background_edges=30, seed=seed)
    spec.add("hub4", hub_and_spoke(4, edge_labels=["d", "d", "d", "d"]), copies=6)
    spec.add("chain3", chain(3, edge_labels=["p", "q", "p"]), copies=6)
    spec.add("cycle3", cycle(3, edge_labels=["r", "r", "r"]), copies=5)
    planted = build_planted_graph(spec)
    transactions = split_graph(
        planted.graph, 10, strategy=PartitionStrategy.BREADTH_FIRST, seed=seed
    )
    return ScenarioData(
        transactions=transactions,
        host=planted.graph,
        ground_truth=planted.ground_truth,
    )


def _build_adversarial_isomorphs(seed: int) -> ScenarioData:
    rng = random.Random(seed)
    transactions: list[LabeledGraph] = []

    def star(prefix: str, n_spokes: int, twist: bool) -> LabeledGraph:
        graph = LabeledGraph(name=f"{prefix}-star{n_spokes}")
        graph.add_vertex(f"{prefix}h", "hub")
        for spoke in range(n_spokes):
            graph.add_vertex(f"{prefix}s{spoke}", "spoke")
            graph.add_edge(f"{prefix}h", f"{prefix}s{spoke}", "e")
        if twist:
            # One extra edge between two spokes: near-isomorphic to the
            # plain star but not isomorphic.
            graph.add_edge(f"{prefix}s0", f"{prefix}s1", "e")
        return graph

    for index in range(6):
        transactions.append(star(f"a{index}", 6, twist=False))
        transactions.append(star(f"b{index}", 6, twist=True))
    # Uniform 9-spoke stars defeat canonicalisation (9! orderings), so
    # everything fingerprinting them — candidate dedup, SUBDUE reporting,
    # outcome payloads — must fall back to invariant + isomorphism
    # checks.  They outnumber the 6-spoke population so SUBDUE's MDL
    # search reports the full 9-edge star among its best substructures.
    for index in range(8):
        transactions.append(star(f"c{index}", 9, twist=index % 2 == 1))
    # Uniform rings whose rotations are automorphisms.
    for index in range(6):
        ring = cycle(5, vertex_label="spoke", edge_labels=["e"] * 5, prefix=f"r{index}")
        if index % 3 == 0:
            ring.add_edge(f"r{index}_0", f"r{index}_2", "e")
        transactions.append(ring)
    rng.shuffle(transactions)
    return ScenarioData(transactions=transactions, host=stitch_transactions(transactions))


def _build_transportation_od(seed: int) -> ScenarioData:
    generator = TransportationDataGenerator(GeneratorConfig(scale=0.002, seed=seed))
    dataset = generator.generate()
    host = build_od_graph(dataset, edge_attribute="GROSS_WEIGHT", vertex_labeling="uniform")
    transactions = split_graph(
        host, 14, strategy=PartitionStrategy.BREADTH_FIRST, seed=seed
    )
    return ScenarioData(transactions=transactions, host=host)


def _build_messy_mobility(seed: int) -> ScenarioData:
    """Dirty multi-source feed → clean → bin → window → transactions.

    Everything upstream of graph construction runs inside the builder, so
    the scenario digest pins the cleaning and discretisation behaviour:
    a regression in synonym resolution, imputation, or binning changes
    the corpus fingerprint even if mining itself is untouched.
    """
    config = MobilityConfig(seed=seed)
    zones = mobility_zone_directory(config)
    records = generate_messy_mobility_records(config, zones)
    dataset, _report = clean_mobility_records(
        records, zones, observation_window=config.window, name="messy-mobility"
    )
    transactions = window_graphs(
        partition_by_window(dataset, window_days=7, edge_attribute="GROSS_WEIGHT")
    )
    return ScenarioData(transactions=transactions, host=stitch_transactions(transactions))


def _build_stress_powerlaw(seed: int) -> ScenarioData:
    """Power-law transaction sizes over a skewed label alphabet.

    A handful of giant transactions and a long tail of tiny ones: under
    round-robin shard placement the giants land on whichever shards their
    tids hit, so per-shard scan workloads diverge — the shape the
    ``shard_scan_max`` / ``shard_scan_min`` telemetry exists to expose.
    """
    rng = random.Random(seed)
    rare_vertex = [f"cold{i}" for i in range(6)]
    transactions = []
    for index in range(24):
        # Cubic power law: mostly 3-5 vertices, occasionally up to ~18.
        n_vertices = 3 + int(15 * (rng.random() ** 3))
        graph = LabeledGraph(name=f"power{index}")
        for v in range(n_vertices):
            graph.add_vertex(f"v{v}", _skewed_choice(rng, "hub", rare_vertex, 0.7))
        n_edges = min(n_vertices * (n_vertices - 1), int(n_vertices * 1.8))
        attempts = 0
        while graph.n_edges < n_edges and attempts < n_edges * 10:
            attempts += 1
            a, b = rng.sample(range(n_vertices), 2)
            if graph.has_edge(f"v{a}", f"v{b}"):
                continue
            graph.add_edge(f"v{a}", f"v{b}", _skewed_choice(rng, "w", ["x", "y"], 0.8))
        transactions.append(graph)
    return ScenarioData(transactions=transactions, host=stitch_transactions(transactions))


def _build_stress_nearclique(seed: int) -> ScenarioData:
    """Uniform near-cliques: symmetry stress for canonicalisation.

    The full bidirectional K9 cliques have a single colour class of nine
    vertices (9! candidate orderings), so canonicalising them raises
    :class:`CanonicalizationError` and the digest path must take the
    invariant fallback; the K9 variants with three directed edges removed
    refine into three classes of three (216 orderings) and canonicalise
    cheaply, pinning both sides of the boundary in one corpus.
    """
    rng = random.Random(seed)

    def clique(prefix: str, n: int, dropped: tuple[tuple[int, int], ...]) -> LabeledGraph:
        graph = LabeledGraph(name=f"{prefix}K{n}")
        for v in range(n):
            graph.add_vertex(f"{prefix}v{v}", "site")
        for a in range(n):
            for b in range(n):
                if a != b and (a, b) not in dropped:
                    graph.add_edge(f"{prefix}v{a}", f"{prefix}v{b}", "e")
        return graph

    transactions: list[LabeledGraph] = []
    for index in range(4):
        # Too symmetric to canonicalise: single colour class, 9! orderings.
        transactions.append(clique(f"full{index}_", 9, dropped=()))
    for index in range(4):
        # Three dropped directed edges split the refinement into three
        # colour classes of three — canonicalisable, but only just.
        transactions.append(clique(f"near{index}_", 9, dropped=((0, 1), (2, 3), (4, 5))))
    for index in range(8):
        dropped = ((0, 1),) if index % 2 else ()
        transactions.append(clique(f"k5_{index}_", 5, dropped=dropped))
    rng.shuffle(transactions)
    return ScenarioData(transactions=transactions, host=stitch_transactions(transactions))


def _build_stress_windows(seed: int) -> ScenarioData:
    """Overlapping temporal windows: stride (3 days) < window (7 days).

    Each trip of the OD dataset is active in up to three consecutive
    windows, so window transactions share edges — support counts reflect
    the overlap, not just the raw data.  The dataset is clipped to six
    weeks to keep the corpus small enough for the differential gate.
    """
    generator = TransportationDataGenerator(GeneratorConfig(scale=0.002, seed=seed))
    dataset = generator.generate()
    first_date, _ = dataset.date_range()
    cutoff = first_date + timedelta(days=41)
    clipped = TransactionDataset(
        transactions=[t for t in dataset.transactions if t.req_pickup_dt <= cutoff],
        name="stress-windows",
    )
    transactions = window_graphs(
        partition_by_window(
            clipped, window_days=7, stride_days=3, edge_attribute="GROSS_WEIGHT"
        )
    )
    return ScenarioData(transactions=transactions, host=stitch_transactions(transactions))


def _build_streaming_head(seed: int) -> ScenarioData:
    """The first 32 transactions of the 100k streaming corpus.

    ``StreamingMobilityCorpus.transaction`` is a pure function of
    ``(seed, tid)`` independent of corpus length, so this head is
    byte-identical to the head of the full production corpus — the
    differential gate here covers the exact generator the slow-lane
    streaming check samples at scale.
    """
    corpus = StreamingMobilityCorpus(n_transactions=32, seed=seed)
    transactions = corpus.head(32)
    return ScenarioData(transactions=transactions, host=stitch_transactions(transactions))


register(
    Scenario(
        name="dense-uniform",
        description="densely connected transactions over a two-label alphabet",
        builder=_build_dense_uniform,
        tags=("synthetic", "dense"),
        params=MiningParams(fsg_min_support=4, fsg_max_edges=2, subdue_max_edges=2),
    )
)
register(
    Scenario(
        name="sparse-chains",
        description="random tree/path transactions (sparse, easily rejected)",
        builder=_build_sparse_chains,
        tags=("synthetic", "sparse"),
        params=MiningParams(fsg_min_support=3, fsg_max_edges=3),
    )
)
register(
    Scenario(
        name="label-skew",
        description="one dominant vertex/edge label with a rare tail",
        builder=_build_label_skew,
        tags=("synthetic", "skew"),
        params=MiningParams(fsg_min_support=4, fsg_max_edges=2, subdue_max_edges=2),
    )
)
register(
    Scenario(
        name="heavy-multigraph",
        description="parallel-edge multigraph corpora collapsed via simplify()",
        builder=_build_heavy_multigraph,
        tags=("synthetic", "multigraph"),
        params=MiningParams(fsg_min_support=3, fsg_max_edges=3),
    )
)
register(
    Scenario(
        name="temporal-drift",
        description="edge-label distribution drifts across the corpus",
        builder=_build_temporal_drift,
        tags=("synthetic", "temporal"),
        params=MiningParams(fsg_min_support=4, fsg_max_edges=2, subdue_max_edges=2),
    )
)
register(
    Scenario(
        name="planted-patterns",
        description="known motifs planted in one graph, re-partitioned; recall ground truth",
        builder=_build_planted_patterns,
        tags=("planted", "recall"),
        params=MiningParams(
            fsg_min_support=2,
            fsg_max_edges=4,
            structural_k=8,
            structural_min_support=2,
            structural_max_edges=3,
        ),
    )
)
register(
    Scenario(
        name="adversarial-isomorphs",
        description="near-isomorphic symmetric stars/rings; some defeat canonicalisation",
        builder=_build_adversarial_isomorphs,
        tags=("adversarial", "symmetry"),
        params=MiningParams(fsg_min_support=4, fsg_max_edges=3, subdue_max_edges=3),
    )
)
register(
    Scenario(
        name="transportation-od",
        description="the paper's synthetic OD dataset at tiny scale, partitioned",
        builder=_build_transportation_od,
        tags=("paper", "od"),
        params=MiningParams(
            fsg_min_support=3,
            fsg_max_edges=2,
            structural_k=6,
            structural_min_support=2,
            structural_max_edges=2,
            subdue_max_edges=2,
            subdue_limit=60,
        ),
    )
)
register(
    Scenario(
        name="messy-mobility",
        description="dirty multi-source mobility feed cleaned and binned before graphing",
        builder=_build_messy_mobility,
        tags=("messy", "ingest", "mobility"),
        params=MiningParams(
            fsg_min_support=7,
            fsg_max_edges=2,
            structural_k=5,
            structural_min_support=2,
            structural_max_edges=2,
            subdue_max_edges=2,
            subdue_limit=50,
        ),
    )
)
register(
    Scenario(
        name="stress-powerlaw",
        description="power-law transaction sizes and label skew pressuring shard balance",
        builder=_build_stress_powerlaw,
        tags=("stress", "skew"),
        params=MiningParams(fsg_min_support=4, fsg_max_edges=2, subdue_max_edges=2),
    )
)
register(
    Scenario(
        name="stress-nearclique",
        description="uniform near-cliques forcing the canonicalisation fallback",
        builder=_build_stress_nearclique,
        tags=("stress", "symmetry"),
        params=MiningParams(
            fsg_min_support=6,
            fsg_max_edges=2,
            structural_k=4,
            structural_max_edges=2,
            subdue_beam=2,
            subdue_max_edges=2,
            subdue_limit=40,
        ),
    )
)
register(
    Scenario(
        name="stress-windows",
        description="overlapping temporal windows (stride < window) of the OD dataset",
        builder=_build_stress_windows,
        tags=("stress", "temporal", "windows"),
        params=MiningParams(
            fsg_min_support=8,
            fsg_max_edges=2,
            structural_k=5,
            structural_min_support=2,
            structural_max_edges=2,
            subdue_max_edges=2,
            subdue_limit=40,
        ),
    )
)
register(
    Scenario(
        name="streaming-mobility-head",
        description="head of the 100k streaming corpus under the full differential gate",
        builder=_build_streaming_head,
        tags=("streaming", "mobility"),
        params=MiningParams(fsg_min_support=2, fsg_max_edges=2, subdue_max_edges=2),
    )
)
