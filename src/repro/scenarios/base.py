"""The scenario registry: named, seeded, deterministic mining workloads.

A :class:`Scenario` bundles everything the verification harness needs to
exercise the whole mining stack on one kind of data: a deterministic
corpus builder (graph transactions plus a stitched single-graph host),
the mining knobs sized for that corpus, and optional planted ground truth
for recall measurement.  Scenarios are registered by name in a module
registry so tests, the CLI, and CI all enumerate exactly the same
workloads.

Builders receive only their scenario's seed and must be pure functions of
it — building a scenario twice yields byte-identical graphs, which is
what makes golden digests and cross-runtime differential checks possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.graphs.labeled_graph import LabeledGraph
from repro.patterns.planted import PlantedPattern

#: Label of the connector edges used to stitch transactions into a host.
BRIDGE_LABEL = "__bridge__"


@dataclass
class ScenarioData:
    """What a scenario builder produces: the corpus and its host graph."""

    transactions: list[LabeledGraph]
    host: LabeledGraph
    ground_truth: list[PlantedPattern] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.transactions:
            raise ValueError("a scenario must produce at least one transaction")


@dataclass(frozen=True)
class MiningParams:
    """Per-scenario mining knobs, sized so every engine finishes quickly."""

    fsg_min_support: int = 3
    fsg_max_edges: int = 3
    structural_k: int = 4
    structural_repetitions: int = 2
    structural_min_support: int = 2
    structural_max_edges: int = 2
    subdue_beam: int = 3
    subdue_max_best: int = 3
    subdue_max_edges: int = 3
    subdue_limit: int = 80
    recall_partial_fraction: float = 0.5


@dataclass(frozen=True)
class Scenario:
    """A named, seeded workload for the differential verification harness."""

    name: str
    description: str
    builder: Callable[[int], ScenarioData]
    seed: int = 20050405
    tags: tuple[str, ...] = ()
    params: MiningParams = field(default_factory=MiningParams)

    def build(self) -> ScenarioData:
        """Build the scenario's deterministic dataset."""
        return self.builder(self.seed)


_REGISTRY: dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add *scenario* to the registry; duplicate names are programmer errors."""
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(scenario_names())}"
        ) from None


def scenario_names() -> list[str]:
    """Registered scenario names in registration order."""
    return list(_REGISTRY)


def iter_scenarios(names: Sequence[str] | None = None) -> Iterator[Scenario]:
    """Yield the named scenarios (all of them when *names* is ``None``)."""
    for name in names if names is not None else scenario_names():
        yield get_scenario(name)


def stitch_transactions(transactions: Sequence[LabeledGraph]) -> LabeledGraph:
    """Join a transaction corpus into one connected host graph.

    Each transaction is copied with namespaced vertex ids, then consecutive
    transactions are linked by a single :data:`BRIDGE_LABEL` edge between
    their first vertices.  The result is the deterministic single-graph
    view of a corpus, suitable for SUBDUE and repeated-partitioning runs;
    the bridge label never appears inside a transaction, so planted
    structure survives intact.
    """
    host = LabeledGraph(name="stitched-host")
    anchors: list[str] = []
    for index, transaction in enumerate(transactions):
        renamed = {vertex: f"t{index}:{vertex}" for vertex in transaction.vertices()}
        for vertex, new_name in renamed.items():
            host.add_vertex(new_name, transaction.vertex_label(vertex))
        for edge in transaction.edges():
            host.add_edge(renamed[edge.source], renamed[edge.target], edge.label)
        first = next(iter(transaction.vertices()), None)
        if first is not None:
            anchors.append(renamed[first])
    for previous, current in zip(anchors, anchors[1:]):
        host.add_edge(previous, current, BRIDGE_LABEL)
    return host
