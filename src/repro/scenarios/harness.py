"""The differential verification harness.

One scenario run drives the whole mining stack — FSG, SUBDUE, structural
partitioning, and planted-pattern recall — and condenses the outcome into
a canonical, JSON-serialisable payload whose SHA-256 is the scenario's
*digest*.  The digest is what everything else compares:

* **runtime differential** — the same scenario mined under the serial
  runtime and under :class:`~repro.runtime.shards.ShardedEngine` with
  K = 2, 3 shards on the ``serial`` and ``process`` backends must produce
  byte-identical payloads;
* **legacy oracle** — every mined pattern's support set is recomputed
  with the pre-kernel ``legacy_has_embedding`` matcher and must agree;
* **golden regression** — digests are pinned in ``tests/golden/`` (see
  :mod:`repro.scenarios.golden`);
* **invariants** — support antimonotonicity, canonical-code stability
  under relabeling, and recall-report consistency hold for every run.

Pattern graphs are summarised by canonical code (falling back to the
graph invariant for patterns too symmetric to canonicalise), so payloads
are independent of vertex naming, discovery order, and hash seed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Sequence

from repro.graphs.canonical import CanonicalizationError
from repro.graphs.engine import MatchEngine
from repro.graphs.isomorphism import legacy_has_embedding
from repro.graphs.labeled_graph import LabeledGraph
from repro.mining.fsg.miner import FSGMiner
from repro.mining.fsg.results import FSGResult
from repro.obs.tracer import get_tracer
from repro.mining.subdue.evaluation import EvaluationPrinciple
from repro.mining.subdue.miner import SubdueMiner
from repro.partitioning.structural import StructuralMiningConfig, mine_single_graph
from repro.patterns.recall import measure_recall
from repro.runtime import MiningRuntime, ShardedEngine, resolve_faults
from repro.scenarios.base import Scenario, ScenarioData

#: Shard counts exercised by the full differential check.
DEFAULT_SHARD_COUNTS = (2, 3)


def pattern_code(engine: MatchEngine, pattern: LabeledGraph) -> str:
    """A naming-independent string identity for *pattern*.

    The exact canonical code when it exists; otherwise the graph invariant
    prefixed so the fallback is visible in payloads (symmetric patterns
    share an invariant only if they also share all fast fingerprints).
    """
    try:
        return engine.canonical_code(pattern)
    except CanonicalizationError:
        get_tracer().metrics.counter("canonical_fallbacks", site="digest")
        return f"invariant:{engine.graph_invariant(pattern)}"


@dataclass
class ScenarioOutcome:
    """Everything one scenario run produced, in canonical form.

    ``fsg_result`` carries the live mining result for the oracle /
    invariant checkers; an outcome rebuilt from a stored payload does
    not have one, and the checkers require it.
    """

    scenario: str
    payload: dict
    fsg_result: FSGResult | None = field(repr=False, compare=False, default=None)

    @property
    def digest(self) -> str:
        return payload_digest(self.payload)


def payload_digest(payload: dict) -> str:
    """SHA-256 of the canonical JSON encoding of *payload*."""
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def corpus_fingerprint(data: ScenarioData) -> str:
    """A naming-independent digest of a built corpus, before any mining.

    One canonical code per transaction plus the host dimensions — enough
    to catch a builder whose output drifts across processes or hash
    seeds, cheap enough to recompute in a subprocess determinism test.
    """
    engine = MatchEngine()
    return payload_digest(
        {
            "corpus": sorted(pattern_code(engine, graph) for graph in data.transactions),
            "host": {"n_vertices": data.host.n_vertices, "n_edges": data.host.n_edges},
            "n_ground_truth": len(data.ground_truth),
        }
    )


def _fsg_payload(engine: MatchEngine, result: FSGResult) -> list[dict]:
    rows = [
        {
            "code": pattern_code(engine, entry.pattern),
            "n_vertices": entry.pattern.n_vertices,
            "n_edges": entry.pattern.n_edges,
            "support": entry.support,
            "tids": sorted(entry.supporting_transactions),
        }
        for entry in result.patterns
    ]
    return sorted(rows, key=lambda row: (row["n_edges"], row["code"], row["tids"]))


def _subdue_payload(engine: MatchEngine, miner_result) -> list[dict]:
    rows = [
        {
            "code": pattern_code(engine, substructure.pattern),
            "n_vertices": substructure.pattern.n_vertices,
            "n_edges": substructure.pattern.n_edges,
            "instances": substructure.n_non_overlapping,
            "value": round(substructure.value, 9),
        }
        for substructure in miner_result.best
    ]
    return sorted(rows, key=lambda row: (-row["value"], row["code"]))


def _structural_payload(engine: MatchEngine, result) -> list[dict]:
    rows = [
        {
            "code": pattern_code(engine, entry.pattern),
            "n_edges": entry.pattern.n_edges,
            "support": entry.support,
        }
        for entry in result.patterns
    ]
    return sorted(rows, key=lambda row: (row["n_edges"], row["code"], row["support"]))


def _recall_payload(report) -> dict:
    return {
        "recall": round(report.recall, 9),
        "partial_recall": round(report.partial_recall, 9),
        "recovered": sorted(report.recovered),
        "partially_recovered": sorted(report.partially_recovered),
        "missed": sorted(report.missed),
        "n_mined_patterns": report.n_mined_patterns,
    }


def _mine_runtime_sections(
    scenario: Scenario,
    built: ScenarioData,
    engine: MatchEngine,
    runtime: MiningRuntime | None,
):
    """The two mining stages whose support counting routes through a runtime."""
    params = scenario.params
    fsg = FSGMiner(
        min_support=params.fsg_min_support,
        max_edges=params.fsg_max_edges,
        engine=engine,
        runtime=runtime,
    ).mine(built.transactions)
    structural = mine_single_graph(
        built.host,
        StructuralMiningConfig(
            k=params.structural_k,
            repetitions=params.structural_repetitions,
            min_support=params.structural_min_support,
            max_pattern_edges=params.structural_max_edges,
            seed=scenario.seed,
            # Pin the no-runtime case to serial: the reference run of a
            # differential check must not silently pick up REPRO_WORKERS.
            workers=0,
        ),
        engine=engine,
        runtime=runtime,
    )
    return fsg, structural


def run_scenario(
    scenario: Scenario,
    data: ScenarioData | None = None,
    runtime: MiningRuntime | None = None,
) -> ScenarioOutcome:
    """Run *scenario* through every engine and return the canonical outcome.

    *runtime* routes FSG and structural-partitioning support counting
    (``None`` = the serial default); SUBDUE and recall are engine-level
    and runtime-independent by construction.  The caller owns a supplied
    runtime's lifecycle.
    """
    params = scenario.params
    built = data if data is not None else scenario.build()
    engine = MatchEngine()
    tracer = get_tracer()

    with tracer.span("scenario.mine", scenario=scenario.name):
        fsg, structural = _mine_runtime_sections(scenario, built, engine, runtime)

    subdue = SubdueMiner(
        beam_width=params.subdue_beam,
        max_best=params.subdue_max_best,
        max_substructure_edges=params.subdue_max_edges,
        limit=params.subdue_limit,
        principle=EvaluationPrinciple.MDL,
        engine=engine,
    ).mine(built.host)

    payload = {
        "scenario": scenario.name,
        "n_transactions": len(built.transactions),
        "host": {"n_vertices": built.host.n_vertices, "n_edges": built.host.n_edges},
        # Corpus fingerprint: one naming-independent code per transaction.
        # It pins the input data inside the digest (a drifting builder can
        # never masquerade as a mining change) and, on corpora with members
        # too symmetric to canonicalise, exercises the invariant fallback
        # on the digest path itself.
        "corpus": sorted(pattern_code(engine, graph) for graph in built.transactions),
        "fsg": _fsg_payload(engine, fsg),
        "subdue": _subdue_payload(engine, subdue),
        "structural": _structural_payload(engine, structural),
    }
    if built.ground_truth:
        report = measure_recall(
            built.ground_truth,
            fsg.patterns,
            partial_fraction=params.recall_partial_fraction,
            engine=engine,
        )
        payload["recall"] = _recall_payload(report)
    return ScenarioOutcome(scenario=scenario.name, payload=payload, fsg_result=fsg)


# ----------------------------------------------------------------------
# Invariant checks
# ----------------------------------------------------------------------
def _shuffled_copy(pattern: LabeledGraph) -> LabeledGraph:
    """A structure-preserving rename (reversed insertion order)."""
    renamed = {vertex: f"inv:{vertex}" for vertex in pattern.vertices()}
    clone = LabeledGraph(name="invariant-copy")
    for vertex in reversed(list(pattern.vertices())):
        clone.add_vertex(renamed[vertex], pattern.vertex_label(vertex))
    for edge in pattern.edges():
        clone.add_edge(renamed[edge.source], renamed[edge.target], edge.label)
    return clone


def _pattern_sample(result: FSGResult, max_patterns: int | None):
    """The patterns a capped check should look at.

    ``None`` means every mined pattern.  A cap keeps the fast test tier
    quick, but FSG results are level-ordered, so a head slice would check
    only trivial single edges — the capped sample therefore takes the
    *deepest* patterns first (the ones the kernel and runtimes are most
    likely to get wrong).
    """
    if max_patterns is None:
        return result.patterns
    by_depth = sorted(result.patterns, key=lambda entry: -entry.pattern.n_edges)
    return by_depth[:max_patterns]


def check_invariants(outcome: ScenarioOutcome, max_patterns: int | None = None) -> list[str]:
    """Structural invariants every correct run satisfies; returns failures.

    * **support antimonotonicity** — a pattern's support never exceeds the
      support of any single edge it contains (each edge triple is itself a
      level-1 frequent pattern of the same run);
    * **canonical-code stability** — a pattern's code is unchanged by
      vertex renaming and by recomputation in a fresh engine;
    * **recall consistency** — recall fractions match the recovered /
      missed partition sizes.

    Every mined pattern is checked by default; ``max_patterns`` caps the
    sweep (deepest patterns first) where speed matters more.
    """
    failures: list[str] = []
    result = outcome.fsg_result
    if result is None:
        raise ValueError(
            f"outcome for {outcome.scenario!r} carries no FSG result "
            "(rebuilt from a stored payload?); invariant checks need a live run"
        )
    engine = MatchEngine()

    edge_support: dict[tuple, int] = {}
    for entry in result.patterns:
        if entry.pattern.n_edges != 1:
            continue
        edge = next(iter(entry.pattern.edges()))
        triple = (
            str(entry.pattern.vertex_label(edge.source)),
            str(edge.label),
            str(entry.pattern.vertex_label(edge.target)),
        )
        edge_support[triple] = entry.support

    for entry in _pattern_sample(result, max_patterns):
        for edge in entry.pattern.edges():
            triple = (
                str(entry.pattern.vertex_label(edge.source)),
                str(edge.label),
                str(entry.pattern.vertex_label(edge.target)),
            )
            bound = edge_support.get(triple)
            if bound is None:
                failures.append(
                    f"{outcome.scenario}: edge {triple} of a frequent pattern is "
                    "not itself reported frequent (antimonotonicity violated)"
                )
            elif entry.support > bound:
                failures.append(
                    f"{outcome.scenario}: pattern support {entry.support} exceeds "
                    f"edge {triple} support {bound} (antimonotonicity violated)"
                )

        fresh = MatchEngine()
        code = pattern_code(engine, entry.pattern)
        if pattern_code(fresh, entry.pattern) != code:
            failures.append(f"{outcome.scenario}: canonical code differs across engines")
        if pattern_code(fresh, _shuffled_copy(entry.pattern)) != code:
            failures.append(
                f"{outcome.scenario}: canonical code changed under vertex renaming"
            )

    recall = outcome.payload.get("recall")
    if recall is not None:
        total = (
            len(recall["recovered"])
            + len(recall["partially_recovered"])
            + len(recall["missed"])
        )
        expected = len(recall["recovered"]) / total if total else 0.0
        if abs(recall["recall"] - expected) > 1e-9:
            failures.append(f"{outcome.scenario}: recall fraction inconsistent")
    return failures


def check_legacy_oracle(
    outcome: ScenarioOutcome,
    transactions: Sequence[LabeledGraph],
    max_patterns: int | None = None,
) -> list[str]:
    """Recompute pattern supports with the legacy matcher; returns failures.

    The legacy pure-python backtracking matcher predates the indexed
    kernel and every runtime, so agreement here ties the whole stack back
    to the original reference implementation.  Every mined pattern is
    recounted by default; ``max_patterns`` caps the sweep (deepest
    patterns first) where speed matters more.
    """
    if outcome.fsg_result is None:
        raise ValueError(
            f"outcome for {outcome.scenario!r} carries no FSG result "
            "(rebuilt from a stored payload?); the oracle needs a live run"
        )
    failures: list[str] = []
    for entry in _pattern_sample(outcome.fsg_result, max_patterns):
        expected = frozenset(
            tid
            for tid, transaction in enumerate(transactions)
            if legacy_has_embedding(entry.pattern, transaction)
        )
        if frozenset(entry.supporting_transactions) != expected:
            failures.append(
                f"{outcome.scenario}: support {sorted(entry.supporting_transactions)} "
                f"!= legacy matcher support {sorted(expected)}"
            )
    return failures


# ----------------------------------------------------------------------
# The differential check
# ----------------------------------------------------------------------
@dataclass
class DifferentialReport:
    """Result of one scenario's cross-runtime differential check."""

    scenario: str
    digest: str
    payload: dict = field(default_factory=dict, repr=False)
    runs: dict[str, str] = field(default_factory=dict)
    failures: list[str] = field(default_factory=list)
    #: Per-run aggregated runtime counters (`MiningRuntime.stats()`):
    #: matching/cache counters plus the session-protocol counters
    #: (wire_bytes_shipped, patterns_shipped_full/delta,
    #: session_store_evictions) and the recovery counters
    #: (worker_restarts, level_replays, worker_degradations — the chaos
    #: lane's artifact of what each faulted run survived).  Observational
    #: — shown in ``scenarios verify --report`` output, never pinned in
    #: golden files.
    runtime_stats: dict[str, dict[str, int]] = field(default_factory=dict, repr=False)

    @property
    def ok(self) -> bool:
        return not self.failures


def differential_check(
    scenario: Scenario,
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    backends: Sequence[str] = ("serial",),
    check_oracle: bool = True,
    faults=None,
) -> DifferentialReport:
    """Run *scenario* under every runtime configuration and compare digests.

    The serial run is the reference.  Each ``(shards, backend)``
    combination re-mines the runtime-dependent payload sections — FSG and
    structural partitioning, the two stages whose support counting routes
    through the runtime — and must reproduce the reference sections
    byte for byte.  SUBDUE and recall never touch a runtime, so they are
    mined once, in the reference (re-running them per combination would
    repeat identical work without adding coverage).  Invariant checks and
    (by default) the legacy-matcher oracle also run against the
    reference.

    *faults* adds the faulted axis: a fault plan (or spec string;
    ``None`` consults ``REPRO_FAULTS``, so the chaos CI lane needs no
    code) armed on every sharded run.  The serial reference always runs
    unfaulted — that is the point: recovery must reproduce the unfaulted
    sections byte for byte, and the per-run ``runtime_stats`` record the
    respawns and replays it took.
    """
    tracer = get_tracer()
    faults = resolve_faults(faults)
    data = scenario.build()
    with tracer.span("scenario.run", scenario=scenario.name, runtime="serial"):
        reference = run_scenario(scenario, data=data)
    report = DifferentialReport(
        scenario=scenario.name, digest=reference.digest, payload=reference.payload
    )
    reference_sections = payload_digest(
        {"fsg": reference.payload["fsg"], "structural": reference.payload["structural"]}
    )
    # Every entry in `runs` is a digest of the runtime-dependent sections
    # (fsg + structural), so the values are directly comparable; the full
    # payload digest lives in `digest`.
    report.runs["serial"] = reference_sections

    report.failures.extend(check_invariants(reference))
    if check_oracle:
        report.failures.extend(check_legacy_oracle(reference, data.transactions))

    for backend in backends:
        for shards in shard_counts:
            label = f"sharded-{backend}-k{shards}"
            if faults is not None:
                label += "-faulted"
            runtime = ShardedEngine(shards=shards, backend=backend, faults=faults)
            engine = MatchEngine()
            try:
                with tracer.span(
                    "scenario.run", scenario=scenario.name, runtime=label
                ):
                    fsg, structural = _mine_runtime_sections(
                        scenario, data, engine, runtime
                    )
                report.runtime_stats[label] = runtime.stats()
            finally:
                runtime.close()
            sections = payload_digest(
                {
                    "fsg": _fsg_payload(engine, fsg),
                    "structural": _structural_payload(engine, structural),
                }
            )
            report.runs[label] = sections
            if sections != reference_sections:
                report.failures.append(
                    f"{scenario.name}: {label} mining sections {sections[:12]} != "
                    f"serial sections {reference_sections[:12]}"
                )
    return report
