"""Golden-run regression: pinned per-scenario outcome digests.

``tests/golden/scenarios.json`` records, for every registered scenario,
the SHA-256 digest of its canonical outcome payload plus a few headline
counts for human diffing.  `verify_scenarios` re-runs the differential
harness and compares against the pinned digests; `--update-golden` (CLI)
or ``update=True`` refreshes the file after an intentional change to the
corpora or the payload format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.scenarios.base import iter_scenarios
from repro.scenarios.harness import DifferentialReport, differential_check

#: Location of the golden file inside a source checkout.
_REPO_ROOT = Path(__file__).resolve().parents[3]


def default_golden_path() -> Path:
    """``tests/golden/scenarios.json`` relative to the source checkout."""
    return _REPO_ROOT / "tests" / "golden" / "scenarios.json"


def load_golden(path: Path | None = None) -> dict[str, dict]:
    """Load the golden digest table; an absent file is an empty table."""
    golden_path = path if path is not None else default_golden_path()
    if not golden_path.exists():
        return {}
    return json.loads(golden_path.read_text(encoding="utf-8"))


def save_golden(entries: dict[str, dict], path: Path | None = None) -> Path:
    """Write the golden digest table (sorted, trailing newline)."""
    golden_path = path if path is not None else default_golden_path()
    golden_path.parent.mkdir(parents=True, exist_ok=True)
    golden_path.write_text(
        json.dumps(entries, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return golden_path


def golden_entry(report: DifferentialReport, payload: dict) -> dict:
    """The pinned record for one scenario: digest plus headline counts."""
    entry = {
        "digest": report.digest,
        "n_transactions": payload["n_transactions"],
        "n_fsg_patterns": len(payload["fsg"]),
        "n_subdue": len(payload["subdue"]),
        "n_structural": len(payload["structural"]),
    }
    if "recall" in payload:
        entry["recall"] = payload["recall"]["recall"]
    return entry


@dataclass
class VerificationResult:
    """Outcome of one `verify_scenarios` sweep."""

    reports: list[DifferentialReport] = field(default_factory=list)
    entries: dict[str, dict] = field(default_factory=dict)
    failures: list[str] = field(default_factory=list)
    updated_path: Path | None = None

    @property
    def ok(self) -> bool:
        return not self.failures


def verify_scenarios(
    names: Sequence[str] | None = None,
    shard_counts: Sequence[int] = (2, 3),
    backends: Sequence[str] = ("serial",),
    update: bool = False,
    golden_path: Path | None = None,
    check_oracle: bool = True,
) -> VerificationResult:
    """Differential-check scenarios and compare (or refresh) golden digests.

    Every named scenario (all registered ones by default) runs through
    :func:`~repro.scenarios.harness.differential_check`; the resulting
    digest must match the pinned one unless ``update`` is set, in which
    case the golden file is rewritten with the fresh digests.
    A partial ``names`` selection with ``update`` only touches those
    entries; a full update (``names=None``) replaces the table outright,
    so entries for removed or renamed scenarios do not linger.
    ``update`` refuses to write when any differential / invariant /
    oracle check failed — a digest from a diverging stack must never be
    pinned as golden.
    """
    result = VerificationResult()
    golden = load_golden(golden_path)
    for scenario in iter_scenarios(names):
        report = differential_check(
            scenario,
            shard_counts=shard_counts,
            backends=backends,
            check_oracle=check_oracle,
        )
        result.reports.append(report)
        result.failures.extend(report.failures)
        entry = golden_entry(report, report.payload)
        result.entries[scenario.name] = entry
        pinned = golden.get(scenario.name)
        if update:
            continue
        if pinned is None:
            result.failures.append(
                f"{scenario.name}: no golden digest pinned (run with --update-golden)"
            )
        elif pinned["digest"] != report.digest:
            result.failures.append(
                f"{scenario.name}: digest {report.digest} != golden {pinned['digest']}"
            )
    if update and not result.failures:
        if names is None:
            golden = dict(result.entries)
        else:
            golden.update(result.entries)
        result.updated_path = save_golden(golden, golden_path)
    return result
