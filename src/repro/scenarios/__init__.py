"""Scenario workloads and the differential verification harness.

The test-side counterpart of the mining stack: a registry of named,
seeded workloads (:mod:`repro.scenarios.corpora`) that every engine —
FSG, SUBDUE, structural partitioning, recall — is run against under
every runtime (serial, sharded K=2/3, serial + process backends) and the
legacy matcher, with outcomes condensed into canonical digests pinned
under ``tests/golden/`` (:mod:`repro.scenarios.golden`).

Quick tour::

    from repro.scenarios import get_scenario, run_scenario, differential_check

    outcome = run_scenario(get_scenario("dense-uniform"))
    print(outcome.digest, len(outcome.payload["fsg"]))
    report = differential_check(get_scenario("planted-patterns"))
    assert report.ok

or from the command line::

    python -m repro.cli scenarios list
    python -m repro.cli scenarios run dense-uniform
    python -m repro.cli scenarios verify [--update-golden]
"""

from __future__ import annotations

from repro.scenarios.base import (
    BRIDGE_LABEL,
    MiningParams,
    Scenario,
    ScenarioData,
    get_scenario,
    iter_scenarios,
    register,
    scenario_names,
    stitch_transactions,
)
from repro.scenarios.harness import (
    DEFAULT_SHARD_COUNTS,
    DifferentialReport,
    ScenarioOutcome,
    check_invariants,
    check_legacy_oracle,
    corpus_fingerprint,
    differential_check,
    pattern_code,
    payload_digest,
    run_scenario,
)
from repro.scenarios.streaming import (
    StreamingMobilityCorpus,
    sampled_digest,
    stream_report,
)
from repro.scenarios.golden import (
    VerificationResult,
    default_golden_path,
    load_golden,
    save_golden,
    verify_scenarios,
)

# Importing the corpora module registers the built-in scenarios.
from repro.scenarios import corpora as _corpora  # noqa: F401

__all__ = [
    "BRIDGE_LABEL",
    "DEFAULT_SHARD_COUNTS",
    "DifferentialReport",
    "MiningParams",
    "Scenario",
    "ScenarioData",
    "ScenarioOutcome",
    "StreamingMobilityCorpus",
    "VerificationResult",
    "check_invariants",
    "check_legacy_oracle",
    "corpus_fingerprint",
    "default_golden_path",
    "differential_check",
    "get_scenario",
    "iter_scenarios",
    "load_golden",
    "pattern_code",
    "payload_digest",
    "register",
    "run_scenario",
    "sampled_digest",
    "save_golden",
    "scenario_names",
    "stitch_transactions",
    "stream_report",
    "verify_scenarios",
]
